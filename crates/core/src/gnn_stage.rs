//! Stage 4: Interaction-GNN edge classification — full-graph training
//! (the original Exa.TrkX approach, with OOM-skip emulation), minibatch
//! ShaDow training with the PyG-style baseline sampler, and minibatch
//! training with matrix-based bulk sampling plus coalesced all-reduce
//! (the paper's contributions). Produces the per-epoch convergence curves
//! of Figure 4 and the epoch-time breakdowns of Figure 3.

use crate::train::{
    plan_chunks, with_batch_source, BatchSource, BatchingMode, EpochCtx, EpochStats,
    FullGraphSource, HogwildShared, Hook, SampledBatch, SampledBatchSource, ShardChunks, TrainLoop,
    TrainStep, ValMetrics,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use trkx_ddp::{run_workers, AllReducer, BucketScheduler, CommLink, DdpConfig, EpochTiming};
use trkx_detector::EventGraph;
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::{bce_with_logits, Adam, BinaryStats, Bindings, BucketLayout, Param, Sgd};
use trkx_sampling::{
    vertex_batches, BulkShadowSampler, SampledSubgraph, Sampler, SamplerGraph, ShadowConfig,
    ShadowSampler,
};
use trkx_tensor::{EdgePlans, Matrix, Tape};

/// An event graph converted to training-ready matrices plus the sampler
/// view of its adjacency. Built once, reused every epoch.
pub struct PreparedGraph {
    pub num_nodes: usize,
    pub x: Matrix,
    pub y: Matrix,
    pub src: Arc<Vec<u32>>,
    pub dst: Arc<Vec<u32>>,
    pub labels: Vec<f32>,
    pub sampler: SamplerGraph,
    /// Edge plans for the full graph's adjacency, built once here and
    /// reused by every full-graph forward pass (training and inference).
    pub plans: Arc<EdgePlans>,
}

impl PreparedGraph {
    /// Assemble from already-built matrices and index arrays; the edge
    /// plans are derived here so every constructor path caches them.
    pub fn new(
        num_nodes: usize,
        x: Matrix,
        y: Matrix,
        src: Arc<Vec<u32>>,
        dst: Arc<Vec<u32>>,
        labels: Vec<f32>,
        sampler: SamplerGraph,
    ) -> Self {
        let plans = Arc::new(EdgePlans::new(src.clone(), dst.clone(), num_nodes));
        Self {
            num_nodes,
            x,
            y,
            src,
            dst,
            labels,
            sampler,
            plans,
        }
    }

    pub fn from_event_graph(g: &EventGraph) -> Self {
        let sampler = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
        Self::from_event_graph_with_sampler(g, sampler)
    }

    /// Assemble with a caller-built sampler view — the out-of-core path:
    /// node/edge feature matrices stay in RAM (they are streamed row-wise
    /// by batch gather), while `sampler` reads its adjacency through
    /// whatever [`trkx_sparse::RowStore`]s it was constructed over, e.g.
    /// a pair of on-disk [`trkx_sparse::ShardedCsr`] stores.
    pub fn from_event_graph_with_sampler(g: &EventGraph, sampler: SamplerGraph) -> Self {
        assert_eq!(sampler.num_nodes, g.num_nodes, "sampler/event node count");
        let x = Matrix::from_vec(g.num_nodes, g.num_vertex_features, g.x.clone());
        let y = Matrix::from_vec(g.num_edges(), g.num_edge_features, g.y.clone());
        Self::new(
            g.num_nodes,
            x,
            y,
            Arc::new(g.src.clone()),
            Arc::new(g.dst.clone()),
            g.labels.clone(),
            sampler,
        )
    }

    pub fn num_edges(&self) -> usize {
        self.labels.len()
    }

    /// Gather the sub-matrices a sampled subgraph trains on.
    pub fn subgraph_matrices(&self, sg: &SampledSubgraph) -> (Matrix, Matrix, Vec<f32>) {
        let x_sub = self.x.gather_rows(&sg.node_map);
        let y_sub = self.y.gather_rows(&sg.orig_edge_ids);
        let labels: Vec<f32> = sg
            .orig_edge_ids
            .iter()
            .map(|&id| self.labels[id as usize])
            .collect();
        (x_sub, y_sub, labels)
    }
}

/// Convert a dataset slice.
pub fn prepare_graphs(graphs: &[EventGraph]) -> Vec<PreparedGraph> {
    graphs.iter().map(PreparedGraph::from_event_graph).collect()
}

/// Out-of-core variant of [`prepare_graphs`]: each event's two adjacency
/// orientations are spilled to sharded files under `dir` (never built in
/// core) and read back through per-store LRU caches holding
/// `cache_shards` shards each. Sampling reads fault shards on demand —
/// off the critical path when prefetch mode is on, since the prefetch
/// thread does the faulting — and the sampled subgraphs, hence the loss
/// curves, are bit-identical to the in-core path.
pub fn prepare_graphs_sharded(
    graphs: &[EventGraph],
    dir: &std::path::Path,
    shard_nodes: usize,
    cache_shards: usize,
) -> std::io::Result<Vec<PreparedGraph>> {
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let spec =
                trkx_detector::spill_event_adjacency(g, dir, &format!("event{i}"), shard_nodes)?;
            let open = |p: &std::path::Path| {
                trkx_sparse::ShardedCsr::<u32>::open(p, cache_shards).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            };
            let sampler = SamplerGraph::from_stores(
                g.num_nodes,
                Arc::new(open(&spec.directed)?),
                Arc::new(open(&spec.undirected)?),
            );
            Ok(PreparedGraph::from_event_graph_with_sampler(g, sampler))
        })
        .collect()
}

/// Aggregate shard-cache counters across the training graphs' sampler
/// views. `None` when every adjacency is in-core (no counters exist), so
/// telemetry only grows a `shard_cache` field on sharded runs; counters
/// are cumulative since each store was opened.
fn shard_cache_stats(train: &[PreparedGraph]) -> Option<crate::train::ShardCacheStats> {
    let mut total: Option<trkx_sparse::CacheCounters> = None;
    for g in train {
        if let Some(c) = g.sampler.cache_counters() {
            let t = total.get_or_insert_with(trkx_sparse::CacheCounters::default);
            *t = t.merged(c);
        }
    }
    total.map(Into::into)
}

/// Which minibatch sampler implementation to use (Fig. 3/4 compare them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SamplerKind {
    /// Per-batch sequential ShaDow (the PyG-implementation baseline).
    Baseline,
    /// Matrix-based bulk ShaDow, sampling `k` minibatches per call.
    Bulk { k: usize },
}

impl SamplerKind {
    /// Number of schedule batches sampled per `sample_bulk` call.
    pub fn chunk_size(&self) -> usize {
        match self {
            SamplerKind::Baseline => 1,
            SamplerKind::Bulk { k } => (*k).max(1),
        }
    }

    /// Build the sampler implementation behind the unified trait.
    pub fn build(&self, shadow: ShadowConfig) -> Box<dyn Sampler> {
        match self {
            SamplerKind::Baseline => Box::new(ShadowSampler::new(shadow)),
            SamplerKind::Bulk { .. } => Box::new(BulkShadowSampler::new(shadow)),
        }
    }
}

/// GNN-stage hyperparameters (paper §IV-A: batch 256, hidden 64, 30
/// epochs, d = 3, s = 6, 8 GNN layers).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GnnTrainConfig {
    pub hidden: usize,
    pub gnn_layers: usize,
    pub mlp_depth: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub shadow: ShadowConfig,
    /// Classification threshold for validation metrics.
    pub threshold: f32,
    /// Positive-class weight; `None` = derive from label balance.
    pub pos_weight: Option<f32>,
    pub seed: u64,
}

impl Default for GnnTrainConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gnn_layers: 8,
            mlp_depth: 2,
            epochs: 30,
            batch_size: 256,
            learning_rate: 1e-3,
            shadow: ShadowConfig {
                depth: 3,
                fanout: 6,
            },
            threshold: 0.5,
            pos_weight: None,
            seed: 0,
        }
    }
}

impl GnnTrainConfig {
    pub fn ignn_config(&self, node_features: usize, edge_features: usize) -> IgnnConfig {
        IgnnConfig::new(node_features, edge_features)
            .with_hidden(self.hidden)
            .with_gnn_layers(self.gnn_layers)
            .with_mlp_depth(self.mlp_depth)
    }

    fn derive_pos_weight(&self, graphs: &[PreparedGraph]) -> f32 {
        if let Some(w) = self.pos_weight {
            return w;
        }
        let pos: f64 = graphs
            .iter()
            .map(|g| g.labels.iter().filter(|&&l| l > 0.5).count() as f64)
            .sum();
        let total: f64 = graphs.iter().map(|g| g.labels.len() as f64).sum();
        let neg = (total - pos).max(1.0);
        ((neg / pos.max(1.0)) as f32).clamp(1.0, 20.0)
    }
}

/// One epoch's record — legacy alias for the unified harness's
/// [`EpochReport`](crate::train::EpochReport) (loss, validation metrics,
/// step count, lr, timing).
pub use crate::train::EpochReport as EpochRecord;

/// Outcome of a training run.
pub struct TrainResult {
    pub model: InteractionGnn,
    pub epochs: Vec<EpochRecord>,
    /// Full-graph training only: events skipped by the activation-memory
    /// budget (the paper's skip-too-large-graphs behaviour).
    pub skipped_graphs: usize,
}

/// Run full-graph inference, returning per-edge logits.
pub fn infer_logits(model: &InteractionGnn, g: &PreparedGraph) -> Vec<f32> {
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    infer_logits_with(&mut tape, &mut bind, model, g)
}

/// [`infer_logits`] against a caller-pooled tape/bindings pair, so
/// repeated inference recycles buffers instead of allocating fresh ones.
pub fn infer_logits_with(
    tape: &mut Tape,
    bind: &mut Bindings,
    model: &InteractionGnn,
    g: &PreparedGraph,
) -> Vec<f32> {
    tape.reset();
    bind.reset();
    let logits = model.forward_planned(tape, bind, &g.x, &g.y, &g.plans);
    tape.value(logits).data().to_vec()
}

/// Edge-classification metrics of `model` over `graphs`.
pub fn evaluate(model: &InteractionGnn, graphs: &[PreparedGraph], threshold: f32) -> BinaryStats {
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    evaluate_with(&mut tape, &mut bind, model, graphs, threshold)
}

/// [`evaluate`] against a caller-pooled tape/bindings pair (one tape
/// serves all graphs; epoch-end validation reuses the same buffers).
pub fn evaluate_with(
    tape: &mut Tape,
    bind: &mut Bindings,
    model: &InteractionGnn,
    graphs: &[PreparedGraph],
    threshold: f32,
) -> BinaryStats {
    let mut stats = BinaryStats::default();
    for g in graphs {
        let logits = infer_logits_with(tape, bind, model, g);
        stats.merge(&BinaryStats::from_logits(&logits, &g.labels, threshold));
    }
    stats
}

/// Full-graph training (the original Exa.TrkX baseline): each training
/// step feeds one entire event graph; graphs whose estimated activation
/// footprint exceeds `activation_budget_floats` are skipped, shrinking
/// the effective training set exactly as on a memory-limited GPU.
pub fn train_full_graph(
    cfg: &GnnTrainConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    activation_budget_floats: Option<usize>,
) -> TrainResult {
    train_full_graph_with_hooks(cfg, train, val, activation_budget_floats, Vec::new())
}

/// [`train_full_graph`] with a caller-supplied hook stack (telemetry,
/// checkpointing, early stopping). Figure 4's convergence curves need
/// every epoch, so the harness attaches no hooks by default — early
/// stopping is strictly opt-in here.
pub fn train_full_graph_with_hooks(
    cfg: &GnnTrainConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    activation_budget_floats: Option<usize>,
    hooks: Vec<Box<dyn Hook>>,
) -> TrainResult {
    train_full_graph_opts(
        cfg,
        train,
        val,
        activation_budget_floats,
        BatchingMode::Sync,
        hooks,
    )
}

/// [`train_full_graph_with_hooks`] with an explicit [`BatchingMode`]:
/// `Prefetch` materialises the next graph's matrices on a background
/// thread while the current one trains. Batch order and loss curves are
/// identical in both modes.
pub fn train_full_graph_opts(
    cfg: &GnnTrainConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    activation_budget_floats: Option<usize>,
    mode: BatchingMode,
    hooks: Vec<Box<dyn Hook>>,
) -> TrainResult {
    let (nf, ef) = (train[0].x.cols(), train[0].y.cols());
    let icfg = cfg.ignn_config(nf, ef);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = InteractionGnn::new(icfg.clone(), &mut rng);
    let pos_weight = cfg.derive_pos_weight(train);

    let usable: Vec<&PreparedGraph> = train
        .iter()
        .filter(|g| {
            activation_budget_floats
                .map(|b| icfg.estimate_activation_floats(g.num_nodes, g.num_edges()) <= b)
                .unwrap_or(true)
        })
        .collect();
    let skipped_graphs = train.len() - usable.len();

    let mut step = FullGraphStep {
        model,
        usable,
        val,
        pos_weight,
        threshold: cfg.threshold,
        mode,
        val_tape: Tape::new(),
        val_bind: Bindings::new(),
    };
    let epochs = TrainLoop::new(Adam::new(cfg.learning_rate), cfg.epochs)
        .with_hooks(hooks)
        .run(&mut step);
    TrainResult {
        model: step.model,
        epochs,
        skipped_graphs,
    }
}

/// Run one minibatch's forward/backward through the epoch context; shared
/// by every GNN trainer (the batch is whatever its [`BatchSource`]
/// produced — a sampled subgraph or a whole event graph).
fn batch_forward_backward(
    ctx: &mut EpochCtx,
    model: &InteractionGnn,
    batch: &SampledBatch,
    pos_weight: f32,
) -> f32 {
    ctx.forward_backward(|tape, bind| {
        if batch.labels.is_empty() {
            return None;
        }
        let logits = model.forward_planned(tape, bind, &batch.x, &batch.y, &batch.plans);
        Some(bce_with_logits(tape, logits, &batch.labels, pos_weight))
    })
}

/// Forward half only (for the comm-overlapped step shape, where backward
/// runs separately through [`EpochCtx::backward_comm`] once the model
/// borrow is released and its `&mut Param` list can be collected).
fn batch_forward(
    ctx: &mut EpochCtx,
    model: &InteractionGnn,
    batch: &SampledBatch,
    pos_weight: f32,
) -> Option<trkx_tensor::Var> {
    ctx.forward_only(|tape, bind| {
        if batch.labels.is_empty() {
            return None;
        }
        let logits = model.forward_planned(tape, bind, &batch.x, &batch.y, &batch.plans);
        Some(bce_with_logits(tape, logits, &batch.labels, pos_weight))
    })
}

/// One scheduler per replica, bucketed to the strategy's budget: layout
/// and canonical fire order are pure functions of the (identical)
/// parameter sizes, so every rank issues the same collective sequence.
fn build_scheduler(model: &InteractionGnn, ddp: &DdpConfig) -> BucketScheduler {
    let sizes: Vec<usize> = model.params().iter().map(|prm| prm.numel()).collect();
    BucketScheduler::new(BucketLayout::from_sizes(
        &sizes,
        ddp.strategy.bucket_bytes(),
    ))
}

/// The full-graph schedule: one optimizer step per (budget-surviving)
/// event graph, pulled from a [`FullGraphSource`].
struct FullGraphStep<'a> {
    model: InteractionGnn,
    usable: Vec<&'a PreparedGraph>,
    val: &'a [PreparedGraph],
    pos_weight: f32,
    threshold: f32,
    mode: BatchingMode,
    val_tape: Tape,
    val_bind: Bindings,
}

impl TrainStep for FullGraphStep<'_> {
    fn train_epoch(&mut self, _epoch: usize, ctx: &mut EpochCtx) -> EpochStats {
        let items: Vec<(usize, &PreparedGraph)> = self.usable.iter().copied().enumerate().collect();
        let source = FullGraphSource::new(items);
        let mut train_s = 0.0f64;
        let mut loss_sum = 0.0f32;
        let sampling_s = with_batch_source(self.mode, source, |src| {
            while let Some(batch) = src.next_batch() {
                let t = Instant::now();
                loss_sum += batch_forward_backward(ctx, &self.model, &batch, self.pos_weight);
                ctx.update(&mut self.model.params_mut());
                train_s += t.elapsed().as_secs_f64();
            }
            src.sample_busy_s()
        });
        EpochStats {
            loss_sum,
            loss_denom: self.usable.len(),
            steps: ctx.steps(),
            timing: EpochTiming {
                sampling_s,
                train_s,
                overlapped: self.mode.is_prefetch(),
                ..Default::default()
            },
            cache: None,
        }
    }

    fn validate(&mut self, _epoch: usize) -> Option<ValMetrics> {
        let stats = evaluate_with(
            &mut self.val_tape,
            &mut self.val_bind,
            &self.model,
            self.val,
            self.threshold,
        );
        Some(ValMetrics {
            precision: stats.precision(),
            recall: stats.recall(),
        })
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.model.params_mut()
    }
}

/// The per-epoch step schedule: `(graph index, global batch)` pairs.
fn build_schedule(
    train: &[PreparedGraph],
    batch_size: usize,
    seed: u64,
    epoch: usize,
) -> Vec<(usize, Vec<u32>)> {
    let mut schedule = Vec::new();
    for (gi, g) in train.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (epoch as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ (gi as u64) << 32,
        );
        for batch in vertex_batches(g.num_nodes, batch_size, &mut rng) {
            schedule.push((gi, batch));
        }
    }
    schedule
}

/// Per-rank hook factory for the threaded DDP trainer: called once per
/// rank, on that rank's thread, to build its hook stack. Hooks must be
/// deterministic functions of the reports they observe — every rank sees
/// identical metrics (replicas stay synchronised), so identical hook
/// stacks make identical stop/LR decisions and the collectives stay
/// aligned.
pub type HookFactory = dyn Fn(usize) -> Vec<Box<dyn Hook>> + Sync;

/// Minibatch ShaDow training with distributed data parallelism.
///
/// `sampler` picks the Fig. 3 comparison arm: `Baseline` is the
/// sequential per-batch ShaDow (PyG-style), `Bulk { k }` samples `k`
/// minibatches per bulk call with matrix-based sampling. The DDP
/// strategy (per-tensor vs coalesced all-reduce) comes from `ddp`.
pub fn train_minibatch(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
) -> TrainResult {
    train_minibatch_with_hooks(cfg, sampler, ddp, train, val, None)
}

/// [`train_minibatch`] with a per-rank hook factory. When hooks are
/// attached, *every* rank runs the validation pass (not just rank 0) so
/// metric-driven hooks make the same decision on every replica.
pub fn train_minibatch_with_hooks(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    hook_factory: Option<&HookFactory>,
) -> TrainResult {
    train_minibatch_opts(
        cfg,
        sampler,
        BatchingMode::Sync,
        ddp,
        train,
        val,
        hook_factory,
    )
}

/// [`train_minibatch_with_hooks`] with an explicit [`BatchingMode`].
/// Under `Prefetch`, every rank runs its own background sampling thread
/// feeding a bounded queue, so step *t+1*'s sampling overlaps step *t*'s
/// forward/backward. The sampler seeds are pure functions of the
/// schedule, so prefetching reproduces sync-mode loss curves bit for bit.
pub fn train_minibatch_opts(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    mode: BatchingMode,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    hook_factory: Option<&HookFactory>,
) -> TrainResult {
    let (nf, ef) = (train[0].x.cols(), train[0].y.cols());
    let icfg = cfg.ignn_config(nf, ef);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let init_model = InteractionGnn::new(icfg, &mut rng);
    let pos_weight = cfg.derive_pos_weight(train);
    let p = ddp.workers;
    let validate_all = hook_factory.is_some();

    // Schedules are precomputed per epoch so every worker sees the same
    // global batch sequence (synchronous DDP).
    let schedules: Vec<Vec<(usize, Vec<u32>)>> = (0..cfg.epochs)
        .map(|e| build_schedule(train, cfg.batch_size, cfg.seed, e))
        .collect();

    // One sampler instance serves every rank (and every rank's prefetch
    // thread): `Sampler` is `Sync` and holds no mutable state.
    let sampler_impl = sampler.build(cfg.shadow);
    let chunk_size = sampler.chunk_size();

    let reducer = AllReducer::new(p, ddp.cost_model);
    let results = run_workers(p, |rank| {
        let mut step = MinibatchRankStep {
            rank,
            p,
            model: init_model.clone(),
            cfg,
            sampler: &*sampler_impl,
            chunk_size,
            mode,
            strategy: ddp.strategy,
            sched: ddp.comm_overlap.then(|| build_scheduler(&init_model, &ddp)),
            reducer: &reducer,
            schedules: &schedules,
            train,
            val,
            pos_weight,
            comm_seen: 0.0,
            run_validation: rank == 0 || validate_all,
            val_tape: Tape::new(),
            val_bind: Bindings::new(),
        };
        let hooks = hook_factory.map_or_else(Vec::new, |f| f(rank));
        let reports = TrainLoop::new(Adam::new(cfg.learning_rate), cfg.epochs)
            .with_hooks(hooks)
            .run(&mut step);
        (step.model, reports)
    });

    // Assemble: rank-0 model + metrics; timings are the max across ranks
    // (synchronous DDP advances at the slowest worker's pace).
    let mut results = results;
    let (model, rank0_reports) = results.remove(0);
    let mut epochs = Vec::with_capacity(rank0_reports.len());
    for (e, mut report) in rank0_reports.into_iter().enumerate() {
        for (_, reports) in &results {
            // Deterministic hooks stop every rank at the same epoch, so
            // each rank reports the same number of epochs.
            report.timing.max_merge(&reports[e].timing);
        }
        epochs.push(report);
    }
    TrainResult {
        model,
        epochs,
        skipped_graphs: 0,
    }
}

/// One DDP rank's schedule: its shard of every global batch, pulled from
/// a [`BatchSource`] ([`ShardChunks`] slices the global chunk plan for
/// this rank), with the gradient collective folded into each step's
/// `sync`.
struct MinibatchRankStep<'a> {
    rank: usize,
    p: usize,
    model: InteractionGnn,
    cfg: &'a GnnTrainConfig,
    sampler: &'a dyn Sampler,
    chunk_size: usize,
    mode: BatchingMode,
    strategy: trkx_ddp::AllReduceStrategy,
    /// `Some` when gradient communication overlaps backward: buckets fire
    /// through the engine's grad-ready bridge instead of one post-backward
    /// `sync_gradients` call. Gradients are bit-identical either way.
    sched: Option<BucketScheduler>,
    reducer: &'a AllReducer,
    schedules: &'a [Vec<(usize, Vec<u32>)>],
    train: &'a [PreparedGraph],
    val: &'a [PreparedGraph],
    pos_weight: f32,
    /// Reducer-reported virtual comm seconds already attributed to past
    /// epochs (the reducer's counter is cumulative and shared).
    comm_seen: f64,
    run_validation: bool,
    val_tape: Tape,
    val_bind: Bindings,
}

impl TrainStep for MinibatchRankStep<'_> {
    fn train_epoch(&mut self, epoch: usize, ctx: &mut EpochCtx) -> EpochStats {
        let rank = self.rank;
        // This rank's batch stream: the global chunk plan, sharded.
        let chunks = plan_chunks(
            &self.schedules[epoch],
            self.chunk_size,
            self.cfg.seed,
            epoch,
        );
        let sharded = ShardChunks::new(chunks.into_iter(), rank, self.p);
        let source = SampledBatchSource::new(self.train, self.sampler, sharded);

        let mut train_s = 0.0f64;
        let mut loss_sum = 0.0f32;
        let sampling_s = with_batch_source(self.mode, source, |src| {
            while let Some(batch) = src.next_batch() {
                let t = Instant::now();
                if let Some(sched) = self.sched.as_mut() {
                    // Overlapped path: buckets all-reduce mid-backward as
                    // their last parameter's gradient finalizes; empty
                    // shards still flush every bucket at finish, so all
                    // ranks issue the same collective sequence.
                    let loss = batch_forward(ctx, &self.model, &batch, self.pos_weight);
                    let link = CommLink::Reduce {
                        reducer: self.reducer,
                        rank,
                    };
                    let mut params = self.model.params_mut();
                    loss_sum += ctx.backward_comm(loss, &mut params, sched, &link);
                    ctx.apply_with(&mut params, |_| {});
                } else {
                    loss_sum += batch_forward_backward(ctx, &self.model, &batch, self.pos_weight);
                    // The collective runs unconditionally inside the step
                    // so every rank makes the same number of calls even
                    // when its shard sampled no edges.
                    let (reducer, strategy) = (self.reducer, self.strategy);
                    ctx.update_with(&mut self.model.params_mut(), |params| {
                        reducer.sync_gradients(rank, params, strategy);
                    });
                }
                train_s += t.elapsed().as_secs_f64();
            }
            src.sample_busy_s()
        });

        // Per-epoch virtual comm delta (identical on every rank; rank 0's
        // value is used).
        let comm_total = self.reducer.virtual_comm_seconds();
        let comm_epoch = comm_total - self.comm_seen;
        self.comm_seen = comm_total;
        // Exposed comm is per-rank (it depends on this rank's own compute
        // gaps); `max_merge` across ranks keeps the slowest.
        let comm_exposed = match self.sched.as_mut() {
            Some(sched) => sched.take_stats().exposed_comm_s,
            None => comm_epoch,
        };

        EpochStats {
            loss_sum,
            loss_denom: ctx.steps(),
            steps: ctx.steps(),
            timing: EpochTiming {
                sampling_s,
                train_s,
                comm_virtual_s: comm_epoch,
                comm_exposed_s: comm_exposed,
                overlapped: self.mode.is_prefetch(),
                comm_overlap: self.sched.is_some(),
            },
            cache: shard_cache_stats(self.train),
        }
    }

    fn validate(&mut self, _epoch: usize) -> Option<ValMetrics> {
        if !self.run_validation {
            return None;
        }
        let stats = evaluate_with(
            &mut self.val_tape,
            &mut self.val_bind,
            &self.model,
            self.val,
            self.cfg.threshold,
        );
        Some(ValMetrics {
            precision: stats.precision(),
            recall: stats.recall(),
        })
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.model.params_mut()
    }
}

/// Single-threaded *simulation* of the same synchronous DDP run as
/// [`train_minibatch`]: ranks execute sequentially, so wall-clock
/// measurements attribute each rank's sampling and compute time exactly
/// (on machines with fewer cores than simulated GPUs, threads timeshare
/// and wall time stops meaning per-worker time). The math is identical —
/// identical replicas, averaged gradients, same per-rank sampler seeds —
/// and the epoch time reported is `max over ranks of per-rank compute`
/// plus the α–β model's all-reduce time, which is what a real P-GPU
/// synchronous system observes. The Figure 3 harness uses this trainer.
pub fn train_minibatch_simulated(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
) -> TrainResult {
    train_minibatch_simulated_with_hooks(cfg, sampler, ddp, train, val, Vec::new())
}

/// [`train_minibatch_simulated`] with a caller-supplied hook stack. The
/// simulator is single-threaded, so one hook stack observes the whole
/// (virtual) cluster.
pub fn train_minibatch_simulated_with_hooks(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    hooks: Vec<Box<dyn Hook>>,
) -> TrainResult {
    train_minibatch_simulated_opts(cfg, sampler, false, ddp, train, val, hooks)
}

/// [`train_minibatch_simulated_with_hooks`] with overlap control. The
/// simulator is single-threaded, so it cannot *run* sampling concurrently
/// with compute — instead `overlap = true` flips the virtual-clock
/// accounting: the epoch's [`EpochTiming`] is marked overlapped, so
/// `total_s` charges `max(sampling, train)` the way a real prefetching
/// loader would ([`VirtualClock::advance_overlapped`]). The math — losses,
/// gradients, updates — is identical either way.
///
/// [`VirtualClock::advance_overlapped`]: trkx_ddp::VirtualClock::advance_overlapped
pub fn train_minibatch_simulated_opts(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    overlap: bool,
    ddp: DdpConfig,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
    hooks: Vec<Box<dyn Hook>>,
) -> TrainResult {
    let (nf, ef) = (train[0].x.cols(), train[0].y.cols());
    let icfg = cfg.ignn_config(nf, ef);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Replicas stay identical under synchronous DDP, so one model
    // suffices: per-rank backward passes accumulate into its grads and
    // the average is the same update every replica would apply.
    let model = InteractionGnn::new(icfg, &mut rng);
    let pos_weight = cfg.derive_pos_weight(train);
    let tensor_bytes: Vec<usize> = model.params().iter().map(|prm| prm.numel() * 4).collect();
    let sampler_impl = sampler.build(cfg.shadow);

    let sched = ddp.comm_overlap.then(|| build_scheduler(&model, &ddp));
    let mut step = SimulatedDdpStep {
        model,
        cfg,
        sampler: &*sampler_impl,
        chunk_size: sampler.chunk_size(),
        overlap,
        ddp,
        sched,
        tensor_bytes,
        train,
        val,
        pos_weight,
        val_tape: Tape::new(),
        val_bind: Bindings::new(),
    };
    let epochs = TrainLoop::new(Adam::new(cfg.learning_rate), cfg.epochs)
        .with_hooks(hooks)
        .run(&mut step);
    TrainResult {
        model: step.model,
        epochs,
        skipped_graphs: 0,
    }
}

/// The single-threaded DDP simulation schedule: per optimizer step, every
/// rank's forward/backward accumulates into one model's gradients
/// (gradient accumulation), then one averaged update plus the α–β-model
/// collective charge.
struct SimulatedDdpStep<'a> {
    model: InteractionGnn,
    cfg: &'a GnnTrainConfig,
    sampler: &'a dyn Sampler,
    chunk_size: usize,
    /// Account sampling as overlapped with compute (`max` instead of sum
    /// in the virtual clock); the math is unchanged.
    overlap: bool,
    ddp: DdpConfig,
    /// `Some` when `ddp.comm_overlap`: the last simulated rank's backward
    /// drives the bucket scheduler through an account-only
    /// [`CommLink::Model`], yielding the serial-vs-exposed comm split.
    sched: Option<BucketScheduler>,
    tensor_bytes: Vec<usize>,
    train: &'a [PreparedGraph],
    val: &'a [PreparedGraph],
    pos_weight: f32,
    val_tape: Tape,
    val_bind: Bindings,
}

impl TrainStep for SimulatedDdpStep<'_> {
    fn train_epoch(&mut self, epoch: usize, ctx: &mut EpochCtx) -> EpochStats {
        let cfg = self.cfg;
        let p = self.ddp.workers;
        let schedule = build_schedule(self.train, cfg.batch_size, cfg.seed, epoch);
        let chunks = plan_chunks(&schedule, self.chunk_size, cfg.seed, epoch);
        // One batch stream per simulated rank: the same global chunk plan,
        // sharded. The streams are equal-length by construction (one batch
        // per schedule entry, empty shards included), so ranks can pull in
        // lockstep — one batch each per optimizer step.
        let mut sources: Vec<_> = (0..p)
            .map(|rank| {
                SampledBatchSource::new(
                    self.train,
                    self.sampler,
                    ShardChunks::new(chunks.clone().into_iter(), rank, p),
                )
            })
            .collect();

        let mut train_rank = vec![0.0f64; p];
        let mut comm_s = 0.0f64;
        let mut loss_sum = 0.0f32;

        loop {
            let step_batches: Vec<Option<SampledBatch>> =
                sources.iter_mut().map(|s| s.next_batch()).collect();
            if step_batches[0].is_none() {
                debug_assert!(step_batches.iter().all(|b| b.is_none()));
                break;
            }
            // All ranks backward (accumulating), then average, one update.
            for (rank, batch) in step_batches.iter().enumerate() {
                let batch = batch.as_ref().expect("rank batch streams are equal length");
                let t = Instant::now();
                let sched = if rank + 1 == p {
                    self.sched.as_mut()
                } else {
                    None
                };
                if let Some(sched) = sched {
                    // Last rank's backward drives the bucket scheduler
                    // (account-only link): the bridge accumulates its
                    // gradients exactly as `harvest` would, while the α–β
                    // model splits comm into serial vs exposed against
                    // this rank's real backward compute gaps.
                    let loss = batch_forward(ctx, &self.model, batch, self.pos_weight);
                    let link = CommLink::Model {
                        cost: self.ddp.cost_model,
                        workers: p,
                    };
                    let mut params = self.model.params_mut();
                    let loss = ctx.backward_comm(loss, &mut params, sched, &link);
                    if rank == 0 {
                        loss_sum += loss;
                    }
                } else {
                    let loss = batch_forward_backward(ctx, &self.model, batch, self.pos_weight);
                    if rank == 0 {
                        loss_sum += loss;
                    }
                    ctx.harvest(&mut self.model.params_mut());
                }
                train_rank[rank] += t.elapsed().as_secs_f64();
            }
            // Average accumulated gradients; charge the collective unless
            // the scheduler already accounted it bucket by bucket.
            let inv = 1.0 / p as f32;
            let (ddp, tensor_bytes) = (self.ddp, &self.tensor_bytes);
            let comm_overlap = self.sched.is_some();
            ctx.apply_with(&mut self.model.params_mut(), |params| {
                for prm in params.iter_mut() {
                    prm.grad.apply(|v| v * inv);
                }
                if p > 1 && !comm_overlap {
                    comm_s += match ddp.strategy {
                        trkx_ddp::AllReduceStrategy::PerTensor => {
                            ddp.cost_model.per_tensor_time(tensor_bytes, p)
                        }
                        trkx_ddp::AllReduceStrategy::Coalesced => {
                            ddp.cost_model.coalesced_time(tensor_bytes, p)
                        }
                        trkx_ddp::AllReduceStrategy::Bucketed { bucket_bytes } => {
                            ddp.cost_model.bucketed_time(tensor_bytes, bucket_bytes, p)
                        }
                    };
                }
            });
        }

        // With the scheduler active, both comm accounts come from it (its
        // serial account provably matches the strategy formulas).
        let (comm_virtual, comm_exposed) = match self.sched.as_mut() {
            Some(sched) => {
                let st = sched.take_stats();
                (st.serial_comm_s, st.exposed_comm_s)
            }
            None => (comm_s, comm_s),
        };

        EpochStats {
            loss_sum,
            loss_denom: ctx.steps(),
            steps: ctx.steps(),
            timing: EpochTiming {
                sampling_s: sources
                    .iter()
                    .map(|s| s.sample_busy_s())
                    .fold(0.0, f64::max),
                train_s: train_rank.iter().copied().fold(0.0, f64::max),
                comm_virtual_s: comm_virtual,
                comm_exposed_s: comm_exposed,
                overlapped: self.overlap,
                comm_overlap: self.sched.is_some(),
            },
            cache: shard_cache_stats(self.train),
        }
    }

    fn validate(&mut self, _epoch: usize) -> Option<ValMetrics> {
        let stats = evaluate_with(
            &mut self.val_tape,
            &mut self.val_bind,
            &self.model,
            self.val,
            self.cfg.threshold,
        );
        Some(ValMetrics {
            precision: stats.precision(),
            recall: stats.recall(),
        })
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.model.params_mut()
    }
}

/// Lock-free asynchronous minibatch training (Hogwild!): `workers`
/// threads train replicas against one [`HogwildShared`] parameter store
/// with **no** replica lockstep — each step pulls the current shared
/// weights, runs its own forward/backward, and writes a racy SGD update
/// straight back. No collectives, no barriers, zero communication cost;
/// the price is gradient staleness and occasional lost updates, so
/// convergence is noisier than synchronous DDP (the EXPERIMENTS.md §fig4
/// study quantifies the trade).
///
/// Same trainer interface as [`train_minibatch`]: identical schedule
/// construction and sharding, so mode comparisons hold the per-worker
/// workload fixed.
pub fn train_minibatch_hogwild(
    cfg: &GnnTrainConfig,
    sampler: SamplerKind,
    workers: usize,
    train: &[PreparedGraph],
    val: &[PreparedGraph],
) -> TrainResult {
    let (nf, ef) = (train[0].x.cols(), train[0].y.cols());
    let icfg = cfg.ignn_config(nf, ef);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let init_model = InteractionGnn::new(icfg, &mut rng);
    let pos_weight = cfg.derive_pos_weight(train);
    let p = workers.max(1);

    let shared = HogwildShared::new(&init_model.params());
    let schedules: Vec<Vec<(usize, Vec<u32>)>> = (0..cfg.epochs)
        .map(|e| build_schedule(train, cfg.batch_size, cfg.seed, e))
        .collect();
    let sampler_impl = sampler.build(cfg.shadow);
    let chunk_size = sampler.chunk_size();

    let results = run_workers(p, |rank| {
        let mut step = HogwildRankStep {
            rank,
            p,
            model: init_model.clone(),
            cfg,
            sampler: &*sampler_impl,
            chunk_size,
            shared: &shared,
            schedules: &schedules,
            train,
            val,
            pos_weight,
            run_validation: rank == 0,
            val_tape: Tape::new(),
            val_bind: Bindings::new(),
        };
        // Plain SGD matches the racy shared update rule; the local
        // optimizer step is overwritten by the next pull anyway.
        TrainLoop::new(Sgd::new(cfg.learning_rate), cfg.epochs).run(&mut step)
    });

    let mut results = results;
    let mut epochs = results.remove(0);
    for reports in &results {
        for (e, r) in epochs.iter_mut().enumerate() {
            r.timing.max_merge(&reports[e].timing);
        }
    }
    // The trained model is whatever the shared store converged to.
    let mut model = init_model;
    shared.pull(&mut model.params_mut());
    TrainResult {
        model,
        epochs,
        skipped_graphs: 0,
    }
}

/// One Hogwild worker's schedule: its shard of every global batch, with
/// pull-before-forward and racy push-after-backward instead of a
/// collective. No cross-rank synchronisation anywhere in the epoch.
struct HogwildRankStep<'a> {
    rank: usize,
    p: usize,
    model: InteractionGnn,
    cfg: &'a GnnTrainConfig,
    sampler: &'a dyn Sampler,
    chunk_size: usize,
    shared: &'a HogwildShared,
    schedules: &'a [Vec<(usize, Vec<u32>)>],
    train: &'a [PreparedGraph],
    val: &'a [PreparedGraph],
    pos_weight: f32,
    run_validation: bool,
    val_tape: Tape,
    val_bind: Bindings,
}

impl TrainStep for HogwildRankStep<'_> {
    fn train_epoch(&mut self, epoch: usize, ctx: &mut EpochCtx) -> EpochStats {
        let chunks = plan_chunks(
            &self.schedules[epoch],
            self.chunk_size,
            self.cfg.seed,
            epoch,
        );
        let sharded = ShardChunks::new(chunks.into_iter(), self.rank, self.p);
        let source = SampledBatchSource::new(self.train, self.sampler, sharded);

        let mut train_s = 0.0f64;
        let mut loss_sum = 0.0f32;
        let sampling_s = with_batch_source(BatchingMode::Sync, source, |src| {
            while let Some(batch) = src.next_batch() {
                let t = Instant::now();
                self.shared.pull(&mut self.model.params_mut());
                loss_sum += batch_forward_backward(ctx, &self.model, &batch, self.pos_weight);
                let (shared, lr) = (self.shared, self.cfg.learning_rate);
                ctx.update_with(&mut self.model.params_mut(), |params| {
                    shared.apply_grads(lr, params);
                });
                train_s += t.elapsed().as_secs_f64();
            }
            src.sample_busy_s()
        });

        EpochStats {
            loss_sum,
            loss_denom: ctx.steps(),
            steps: ctx.steps(),
            // No comm fields: Hogwild's communication cost is exactly zero.
            timing: EpochTiming {
                sampling_s,
                train_s,
                ..Default::default()
            },
            cache: shard_cache_stats(self.train),
        }
    }

    fn validate(&mut self, _epoch: usize) -> Option<ValMetrics> {
        if !self.run_validation {
            return None;
        }
        // Validate the *shared* state, not this replica's local copy.
        self.shared.pull(&mut self.model.params_mut());
        let stats = evaluate_with(
            &mut self.val_tape,
            &mut self.val_bind,
            &self.model,
            self.val,
            self.cfg.threshold,
        );
        Some(ValMetrics {
            precision: stats.precision(),
            recall: stats.recall(),
        })
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.model.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trkx_ddp::AllReduceStrategy;
    use trkx_detector::DatasetConfig;

    fn tiny_dataset() -> (Vec<PreparedGraph>, Vec<PreparedGraph>) {
        let cfg = DatasetConfig::ex3_like(0.01); // ~130 hits
        let graphs = cfg.generate(3, 21);
        let prepared = prepare_graphs(&graphs);
        let mut it = prepared.into_iter();
        let train: Vec<_> = vec![it.next().unwrap(), it.next().unwrap()];
        let val: Vec<_> = vec![it.next().unwrap()];
        (train, val)
    }

    fn quick_cfg() -> GnnTrainConfig {
        GnnTrainConfig {
            hidden: 16,
            gnn_layers: 2,
            mlp_depth: 2,
            epochs: 2,
            batch_size: 32,
            learning_rate: 2e-3,
            shadow: ShadowConfig {
                depth: 2,
                fanout: 4,
            },
            threshold: 0.5,
            pos_weight: None,
            seed: 3,
        }
    }

    #[test]
    fn full_graph_training_improves_loss() {
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 5;
        let r = train_full_graph(&cfg, &train, &val, None);
        assert_eq!(r.epochs.len(), 5);
        assert!(
            r.epochs.last().unwrap().train_loss < r.epochs[0].train_loss,
            "loss did not improve: {:?}",
            r.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>()
        );
        assert_eq!(r.skipped_graphs, 0);
    }

    #[test]
    fn activation_budget_skips_graphs() {
        let (train, val) = tiny_dataset();
        let cfg = quick_cfg();
        let r = train_full_graph(&cfg, &train, &val, Some(1));
        assert_eq!(r.skipped_graphs, train.len());
        // With every graph skipped, the loss is exactly zero.
        assert_eq!(r.epochs[0].train_loss, 0.0);
    }

    #[test]
    fn minibatch_baseline_trains() {
        let (train, val) = tiny_dataset();
        let cfg = quick_cfg();
        let r = train_minibatch(
            &cfg,
            SamplerKind::Baseline,
            DdpConfig::single(),
            &train,
            &val,
        );
        assert_eq!(r.epochs.len(), cfg.epochs);
        assert!(r.epochs.iter().all(|e| e.train_loss.is_finite()));
        assert!(r.epochs[0].timing.sampling_s > 0.0);
        assert!(r.epochs[0].timing.train_s > 0.0);
        // Single worker: no modeled comm.
        assert_eq!(r.epochs[0].timing.comm_virtual_s, 0.0);
    }

    #[test]
    fn minibatch_bulk_trains_and_matches_baseline_quality() {
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        let base = train_minibatch(
            &cfg,
            SamplerKind::Baseline,
            DdpConfig::single(),
            &train,
            &val,
        );
        let bulk = train_minibatch(
            &cfg,
            SamplerKind::Bulk { k: 4 },
            DdpConfig::single(),
            &train,
            &val,
        );
        let b = base.epochs.last().unwrap();
        let k = bulk.epochs.last().unwrap();
        // Same training quality ballpark (identical distribution, noisy).
        assert!((b.val_recall - k.val_recall).abs() < 0.35, "{b:?} vs {k:?}");
    }

    #[test]
    fn ddp_replicas_stay_synchronised() {
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        cfg.batch_size = 16;
        let r = train_minibatch(
            &cfg,
            SamplerKind::Bulk { k: 2 },
            DdpConfig::new(2, AllReduceStrategy::Coalesced),
            &train,
            &val,
        );
        // Comm time was modeled.
        assert!(r.epochs[0].timing.comm_virtual_s > 0.0);
        assert!(r.epochs[0].train_loss.is_finite());
    }

    #[test]
    fn coalesced_comm_is_cheaper_than_per_tensor() {
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        cfg.batch_size = 16;
        let per = train_minibatch(
            &cfg,
            SamplerKind::Bulk { k: 2 },
            DdpConfig::new(2, AllReduceStrategy::PerTensor),
            &train,
            &val,
        );
        let coal = train_minibatch(
            &cfg,
            SamplerKind::Bulk { k: 2 },
            DdpConfig::new(2, AllReduceStrategy::Coalesced),
            &train,
            &val,
        );
        assert!(
            coal.epochs[0].timing.comm_virtual_s < per.epochs[0].timing.comm_virtual_s,
            "coalesced {} !< per-tensor {}",
            coal.epochs[0].timing.comm_virtual_s,
            per.epochs[0].timing.comm_virtual_s
        );
    }

    #[test]
    fn simulated_ddp_matches_threaded_ddp() {
        // Same seeds, same shard assignment: the single-thread simulator
        // must reproduce the threaded trainer's loss trajectory.
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 2;
        cfg.batch_size = 16;
        let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
        let threaded = train_minibatch(&cfg, SamplerKind::Bulk { k: 2 }, ddp, &train, &val);
        let simulated =
            train_minibatch_simulated(&cfg, SamplerKind::Bulk { k: 2 }, ddp, &train, &val);
        for (a, b) in threaded.epochs.iter().zip(&simulated.epochs) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 1e-3,
                "epoch {}: threaded {} vs simulated {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
            assert!((a.val_precision - b.val_precision).abs() < 1e-5);
            assert!((a.val_recall - b.val_recall).abs() < 1e-5);
        }
    }

    #[test]
    fn simulated_ddp_scales_training_time_down() {
        // Per-rank compute drops as work is sharded: max-over-ranks train
        // time at P=4 should be well below P=1 for the same schedule.
        let (train, val) = tiny_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        cfg.batch_size = 64;
        let t1 = train_minibatch_simulated(
            &cfg,
            SamplerKind::Bulk { k: 2 },
            DdpConfig::new(1, AllReduceStrategy::Coalesced),
            &train,
            &val,
        );
        let t4 = train_minibatch_simulated(
            &cfg,
            SamplerKind::Bulk { k: 2 },
            DdpConfig::new(4, AllReduceStrategy::Coalesced),
            &train,
            &val,
        );
        let s1 = t1.epochs[0].timing.train_s;
        let s4 = t4.epochs[0].timing.train_s;
        assert!(
            s4 < s1,
            "train time did not shrink: P=1 {s1:.3}s vs P=4 {s4:.3}s"
        );
    }

    #[test]
    fn sharded_store_training_is_bit_identical_to_in_core() {
        let dcfg = DatasetConfig::ex3_like(0.01);
        let graphs = dcfg.generate(3, 21);
        let incore = prepare_graphs(&graphs);
        let dir = std::env::temp_dir().join(format!("trkx-gnn-sharded-{}", std::process::id()));
        // Small shards + a 2-shard cache force faults and evictions.
        let sharded = prepare_graphs_sharded(&graphs, &dir, 16, 2).unwrap();
        let cfg = quick_cfg();
        let kind = SamplerKind::Bulk { k: 2 };
        let a = train_minibatch(&cfg, kind, DdpConfig::single(), &incore[..2], &incore[2..]);
        let b = train_minibatch(
            &cfg,
            kind,
            DdpConfig::single(),
            &sharded[..2],
            &sharded[2..],
        );
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(
                x.train_loss.to_bits(),
                y.train_loss.to_bits(),
                "epoch {} loss diverged: {} vs {}",
                x.epoch,
                x.train_loss,
                y.train_loss
            );
            assert_eq!(x.val_precision.to_bits(), y.val_precision.to_bits());
            assert_eq!(x.val_recall.to_bits(), y.val_recall.to_bits());
        }
        // Telemetry: in-core runs report no cache; sharded runs report
        // real traffic (cold stores guarantee at least one miss).
        assert!(a.epochs.last().unwrap().shard_cache.is_none());
        let cache = b.epochs.last().unwrap().shard_cache.expect("cache stats");
        assert!(cache.misses > 0, "{cache:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inference_logit_count_matches_edges() {
        let (train, _) = tiny_dataset();
        let cfg = quick_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let model = InteractionGnn::new(cfg.ignn_config(6, 2), &mut rng);
        let logits = infer_logits(&model, &train[0]);
        assert_eq!(logits.len(), train[0].num_edges());
    }
}
