//! End-to-end orchestration of the five-stage Exa.TrkX pipeline
//! (paper Fig. 1): embedding → graph construction → filter → GNN →
//! connected-components track building.

use crate::embedding::{EmbeddingConfig, EmbeddingStage};
use crate::filter::{FilterConfig, FilterStage};
use crate::gnn_stage::{
    infer_logits_with, prepare_graphs, train_minibatch, GnnTrainConfig, PreparedGraph, SamplerKind,
};
use crate::graph_construction::{ConstructionBackend, ConstructionMethod, GraphConstructor};
use crate::metrics::TrackMetrics;
use crate::tracks::{build_tracks, TrackBuildResult};
use trkx_ddp::DdpConfig;
use trkx_detector::{edge_features, vertex_features, Event, EventGraph};
use trkx_ignn::InteractionGnn;
use trkx_nn::Bindings;
use trkx_tensor::{Matrix, Tape};

/// Full-pipeline configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    pub vertex_features: usize,
    pub edge_features: usize,
    pub embedding: EmbeddingConfig,
    /// Truth-edge efficiency the radius graph must reach.
    pub target_construction_efficiency: f64,
    pub max_radius: f32,
    /// Spatial-index backend for stage-2 candidate generation. Every
    /// backend yields bit-identical edge lists; this only trades build
    /// against query cost (defaults to the grid FRNN index; absent in
    /// older bundles).
    #[serde(default)]
    pub construct_backend: ConstructionBackend,
    pub filter: FilterConfig,
    pub gnn: GnnTrainConfig,
    pub gnn_sampler: SamplerKind,
    pub ddp: DdpConfig,
    /// Edge-score threshold for track building.
    pub track_threshold: f32,
    /// Minimum hits per matched track.
    pub min_hits: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            vertex_features: 6,
            edge_features: 2,
            embedding: EmbeddingConfig::default(),
            target_construction_efficiency: 0.96,
            max_radius: 3.0,
            construct_backend: ConstructionBackend::default(),
            filter: FilterConfig::default(),
            gnn: GnnTrainConfig::default(),
            gnn_sampler: SamplerKind::Bulk { k: 4 },
            ddp: DdpConfig::single(),
            track_threshold: 0.5,
            min_hits: 3,
        }
    }
}

/// A fully trained pipeline, ready for inference on new events.
pub struct TrainedPipeline {
    pub config: PipelineConfig,
    pub embedding: EmbeddingStage,
    pub radius: f32,
    pub filter: FilterStage,
    pub gnn: InteractionGnn,
}

/// Quality summary reported after training.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub embedding_loss: f32,
    pub construction_efficiency: f64,
    pub construction_purity: f64,
    pub filter_precision: f64,
    pub filter_recall: f64,
    pub gnn_val_precision: f64,
    pub gnn_val_recall: f64,
    pub val_track_metrics: TrackMetrics,
}

fn features_of(event: &Event, nf: usize) -> Matrix {
    Matrix::from_vec(event.num_hits(), nf, vertex_features(event, nf))
}

/// Build an [`EventGraph`] from a constructed (or pruned) edge set.
fn event_graph_from_edges(
    event: &Event,
    src: Vec<u32>,
    dst: Vec<u32>,
    labels: Vec<f32>,
    nf: usize,
    ef: usize,
) -> EventGraph {
    let x = vertex_features(event, nf);
    let y = edge_features(event, &src, &dst, ef);
    EventGraph {
        num_nodes: event.num_hits(),
        src,
        dst,
        labels,
        x,
        num_vertex_features: nf,
        y,
        num_edge_features: ef,
        event: event.clone(),
    }
}

/// Train all five stages on `train_events`, validating on `val_events`.
pub fn train_pipeline(
    config: PipelineConfig,
    train_events: &[Event],
    val_events: &[Event],
) -> (TrainedPipeline, PipelineReport) {
    assert!(!train_events.is_empty(), "need training events");
    assert!(!val_events.is_empty(), "need validation events");
    let (nf, ef) = (config.vertex_features, config.edge_features);

    // Stage 1: metric-learning embedding.
    let feats: Vec<Matrix> = train_events.iter().map(|e| features_of(e, nf)).collect();
    let mut embedding = EmbeddingStage::new(nf, config.embedding.clone());
    let pairs: Vec<(&Event, &Matrix)> = train_events.iter().zip(feats.iter()).collect();
    let embedding_loss = embedding.train(&pairs);

    // One pooled tape/bindings pair serves every inference call below
    // (per-event embeds, filter pruning, track-building logits).
    let mut tape = Tape::new();
    let mut bind = Bindings::new();

    // Stage 2: radius tuned on the first training event, then one pooled
    // constructor builds every training/validation graph (index and
    // scratch buffers are rebuilt per event, not reallocated).
    let mut ctor = GraphConstructor::new(config.construct_backend);
    let radius = ctor.tune_radius(
        &train_events[0],
        &embedding.embed_with(&mut tape, &mut bind, &feats[0]),
        config.target_construction_efficiency,
        config.max_radius,
    );
    let method = ConstructionMethod::FixedRadius { radius };
    let mut construction_eff = 0.0;
    let mut construction_pur = 0.0;
    let mut train_graphs = Vec::with_capacity(train_events.len());
    for (event, f) in train_events.iter().zip(&feats) {
        let emb = embedding.embed_with(&mut tape, &mut bind, f);
        let g = ctor.construct(event, &emb, method);
        construction_eff += g.edge_efficiency;
        construction_pur += g.edge_purity;
        train_graphs.push(event_graph_from_edges(
            event, g.src, g.dst, g.labels, nf, ef,
        ));
    }
    construction_eff /= train_events.len() as f64;
    construction_pur /= train_events.len() as f64;
    let val_graphs: Vec<EventGraph> = val_events
        .iter()
        .map(|event| {
            let emb = embedding.embed_with(&mut tape, &mut bind, &features_of(event, nf));
            let g = ctor.construct(event, &emb, method);
            event_graph_from_edges(event, g.src, g.dst, g.labels, nf, ef)
        })
        .collect();

    // Stage 3: filter MLP, trained on the constructed graphs.
    let prepared_train = prepare_graphs(&train_graphs);
    let prepared_val = prepare_graphs(&val_graphs);
    let mut filter = FilterStage::new(nf, ef, config.filter.clone());
    filter.train(&prepared_train);
    let filter_stats = filter.evaluate(&prepared_val);

    // Prune graphs with the filter before the GNN.
    let mut prune = |graphs: &[EventGraph], prepared: &[PreparedGraph]| -> Vec<EventGraph> {
        graphs
            .iter()
            .zip(prepared)
            .map(|(g, pg)| {
                let kept = filter.kept_edges_with(&mut tape, &mut bind, pg);
                let src: Vec<u32> = kept.iter().map(|&i| g.src[i]).collect();
                let dst: Vec<u32> = kept.iter().map(|&i| g.dst[i]).collect();
                let labels: Vec<f32> = kept.iter().map(|&i| g.labels[i]).collect();
                event_graph_from_edges(&g.event, src, dst, labels, nf, ef)
            })
            .collect()
    };
    let pruned_train = prune(&train_graphs, &prepared_train);
    let pruned_val = prune(&val_graphs, &prepared_val);

    // Stage 4: the Interaction GNN with minibatch ShaDow training.
    let prepared_pruned_train = prepare_graphs(&pruned_train);
    let prepared_pruned_val = prepare_graphs(&pruned_val);
    let gnn_result = train_minibatch(
        &config.gnn,
        config.gnn_sampler,
        config.ddp,
        &prepared_pruned_train,
        &prepared_pruned_val,
    );
    let last = gnn_result.epochs.last().expect("at least one epoch");

    // Stage 5: track building on validation events.
    let mut val_track_metrics = TrackMetrics {
        num_true_tracks: 0,
        num_reco_tracks: 0,
        num_matched: 0,
    };
    for (g, pg) in pruned_val.iter().zip(&prepared_pruned_val) {
        let logits = infer_logits_with(&mut tape, &mut bind, &gnn_result.model, pg);
        let r = build_tracks(g, &logits, config.track_threshold, config.min_hits);
        val_track_metrics.merge(&r.metrics);
    }

    let report = PipelineReport {
        embedding_loss,
        construction_efficiency: construction_eff,
        construction_purity: construction_pur,
        filter_precision: filter_stats.precision(),
        filter_recall: filter_stats.recall(),
        gnn_val_precision: last.val_precision,
        gnn_val_recall: last.val_recall,
        val_track_metrics,
    };
    let pipeline = TrainedPipeline {
        config,
        embedding,
        radius,
        filter,
        gnn: gnn_result.model,
    };
    (pipeline, report)
}

/// Serialised form of a trained pipeline: configuration plus one
/// state-dict per learned stage.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PipelineBundle {
    pub config: PipelineConfig,
    pub radius: f32,
    pub embedding: crate::checkpoint::Checkpoint,
    pub filter: crate::checkpoint::Checkpoint,
    pub gnn: crate::checkpoint::Checkpoint,
}

impl PipelineBundle {
    /// Check every stage checkpoint's metadata header against the
    /// bundle's own configuration — a cheap pre-flight that rejects
    /// shape-mismatched or truncated artifacts with a clear error before
    /// any model is constructed. Headerless (legacy) checkpoints pass;
    /// they are still shape-checked tensor-by-tensor at apply time.
    pub fn validate(&self) -> Result<(), crate::checkpoint::CheckpointError> {
        let (nf, ef) = (self.config.vertex_features, self.config.edge_features);
        self.embedding
            .validate_meta("embedding", nf, 0, self.config.embedding.dim)?;
        self.filter.validate_meta("filter", nf, ef, 1)?;
        self.gnn.validate_meta("gnn", nf, ef, 1)?;
        Ok(())
    }
}

impl TrainedPipeline {
    /// Save every learned stage plus the configuration to one JSON file.
    pub fn save_json(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{Checkpoint, CheckpointError};
        let (nf, ef) = (self.config.vertex_features, self.config.edge_features);
        let bundle = PipelineBundle {
            config: self.config.clone(),
            radius: self.radius,
            embedding: Checkpoint::from_params(&self.embedding.mlp.params()).with_meta(
                "embedding",
                nf,
                0,
                self.config.embedding.dim,
            ),
            filter: Checkpoint::from_params(&self.filter.mlp.params())
                .with_meta("filter", nf, ef, 1),
            gnn: Checkpoint::from_params(&self.gnn.params()).with_meta("gnn", nf, ef, 1),
        };
        let json =
            serde_json::to_string(&bundle).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Restore a pipeline from [`TrainedPipeline::save_json`] output.
    pub fn load_json(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        use rand::{rngs::StdRng, SeedableRng};
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let bundle: PipelineBundle =
            serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        bundle.validate()?;
        let (nf, ef) = (bundle.config.vertex_features, bundle.config.edge_features);
        let mut embedding = EmbeddingStage::new(nf, bundle.config.embedding.clone());
        bundle.embedding.apply_to(&mut embedding.mlp.params_mut())?;
        let mut filter = FilterStage::new(nf, ef, bundle.config.filter.clone());
        bundle.filter.apply_to(&mut filter.mlp.params_mut())?;
        let mut rng = StdRng::seed_from_u64(bundle.config.gnn.seed);
        let mut gnn = InteractionGnn::new(bundle.config.gnn.ignn_config(nf, ef), &mut rng);
        bundle.gnn.apply_to(&mut gnn.params_mut())?;
        Ok(Self {
            config: bundle.config,
            embedding,
            radius: bundle.radius,
            filter,
            gnn,
        })
    }

    /// Run the full inference pipeline on a new event. One pooled tape
    /// serves all three learned stages.
    pub fn reconstruct(&self, event: &Event) -> TrackBuildResult {
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        self.reconstruct_with(&mut tape, &mut bind, event)
    }

    /// [`TrainedPipeline::reconstruct`] against a caller-pooled
    /// tape/bindings pair, so repeated inference (the serving hot path,
    /// or `trkx reconstruct` over many events) recycles buffers instead
    /// of allocating fresh pools per event.
    pub fn reconstruct_with(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        event: &Event,
    ) -> TrackBuildResult {
        let (mut results, _) = self.reconstruct_batch_with(tape, bind, &[event]);
        results.pop().expect("one result per event")
    }

    /// Micro-batched inference: run the full pipeline over `events` as
    /// one disjoint-union graph. The embedding and filter MLPs see one
    /// concatenated matrix (one GEMM instead of `B` small ones), the GNN
    /// runs over the union edge list with a single
    /// [`EdgePlans`](trkx_tensor::EdgePlans) built
    /// once per micro-batch and reused across all GNN layers, and track
    /// building runs per event on the split outputs.
    ///
    /// Because every kernel in the substrate is row/node-local and
    /// bit-identical at any tile/block/thread geometry (see DESIGN.md
    /// §4d/§4e), the outputs are **bit-identical** to calling
    /// [`TrainedPipeline::reconstruct`] per event, at any batch size —
    /// pinned by `crates/serve/tests/batch_parity.rs`.
    pub fn reconstruct_batch_with(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        events: &[&Event],
    ) -> (Vec<TrackBuildResult>, StageTimings) {
        let mut ctor = self.new_constructor();
        self.reconstruct_batch_pooled(tape, bind, &mut ctor, events)
    }

    /// A stage-2 constructor configured for this pipeline's backend.
    /// Long-lived callers (serve workers, batch reconstruction loops)
    /// hold one and pass it to
    /// [`TrainedPipeline::reconstruct_batch_pooled`] so the spatial
    /// index and edge scratch persist across micro-batches.
    pub fn new_constructor(&self) -> GraphConstructor {
        GraphConstructor::new(self.config.construct_backend)
    }

    /// [`TrainedPipeline::reconstruct_batch_with`] against a
    /// caller-pooled [`GraphConstructor`] — the fully pooled serving hot
    /// path (tape, bindings, and the stage-2 index all recycle buffers).
    pub fn reconstruct_batch_pooled(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        ctor: &mut GraphConstructor,
        events: &[&Event],
    ) -> (Vec<TrackBuildResult>, StageTimings) {
        use std::sync::Arc;
        use std::time::Instant;
        let (nf, ef) = (self.config.vertex_features, self.config.edge_features);
        let mut timings = StageTimings::default();
        if events.is_empty() {
            return (Vec::new(), timings);
        }

        // Stage 1: one embedding forward over the concatenated features.
        let t0 = Instant::now();
        let feats: Vec<Matrix> = events.iter().map(|e| features_of(e, nf)).collect();
        let total_hits: usize = feats.iter().map(Matrix::rows).sum();
        let mut xcat = Vec::with_capacity(total_hits * nf);
        for f in &feats {
            xcat.extend_from_slice(f.data());
        }
        let x_union = Matrix::from_vec(total_hits, nf, xcat);
        let emb_dim = self.config.embedding.dim;
        let emb_all = if total_hits == 0 {
            Matrix::zeros(0, emb_dim)
        } else {
            self.embedding.embed_with(tape, bind, &x_union)
        };
        timings.embed_s = t0.elapsed().as_secs_f64();

        // Stage 2: per-event radius graphs, assembled into one union
        // candidate graph with node ids offset by each event's base.
        let t0 = Instant::now();
        let mut node_base = vec![0usize; events.len()];
        let mut cand_src: Vec<u32> = Vec::new();
        let mut cand_dst: Vec<u32> = Vec::new();
        let mut cand_labels: Vec<f32> = Vec::new();
        let mut ycat: Vec<f32> = Vec::new();
        // Per-event candidate-edge ranges in the union edge list.
        let mut edge_range = vec![(0usize, 0usize); events.len()];
        let mut base = 0usize;
        for (i, event) in events.iter().enumerate() {
            node_base[i] = base;
            let n = feats[i].rows();
            let emb = Matrix::from_vec(
                n,
                emb_dim,
                emb_all.data()[base * emb_dim..(base + n) * emb_dim].to_vec(),
            );
            let g = ctor.construct(
                event,
                &emb,
                ConstructionMethod::FixedRadius {
                    radius: self.radius,
                },
            );
            let start = cand_src.len();
            ycat.extend_from_slice(&edge_features(event, &g.src, &g.dst, ef));
            cand_src.extend(g.src.iter().map(|&s| s + base as u32));
            cand_dst.extend(g.dst.iter().map(|&d| d + base as u32));
            cand_labels.extend_from_slice(&g.labels);
            edge_range[i] = (start, cand_src.len());
            base += n;
        }
        let y_union = Matrix::from_vec(cand_src.len(), ef, ycat);
        timings.construct_s = t0.elapsed().as_secs_f64();
        timings.construct_edges = cand_src.len();

        // Stage 3: one filter forward over the union candidate edges.
        let t0 = Instant::now();
        let cand_src = Arc::new(cand_src);
        let cand_dst = Arc::new(cand_dst);
        let kept: Vec<usize> = if cand_src.is_empty() {
            Vec::new()
        } else {
            let cut = self.filter.logit_cut();
            self.filter
                .logits_arrays_with(
                    tape,
                    bind,
                    &x_union,
                    &y_union,
                    Arc::clone(&cand_src),
                    Arc::clone(&cand_dst),
                )
                .iter()
                .enumerate()
                .filter(|(_, &l)| l > cut)
                .map(|(i, _)| i)
                .collect()
        };
        timings.filter_s = t0.elapsed().as_secs_f64();

        // Stage 4: the GNN over the pruned union graph. The edge plans
        // are built once here and reused by every GNN layer's gathers
        // and scatters.
        let t0 = Instant::now();
        let kept_ids: Vec<u32> = kept.iter().map(|&i| i as u32).collect();
        let pruned_src: Arc<Vec<u32>> = Arc::new(kept.iter().map(|&i| cand_src[i]).collect());
        let pruned_dst: Arc<Vec<u32>> = Arc::new(kept.iter().map(|&i| cand_dst[i]).collect());
        let pruned_labels: Vec<f32> = kept.iter().map(|&i| cand_labels[i]).collect();
        let pruned_y = y_union.gather_rows(&kept_ids);
        let logits: Vec<f32> = if pruned_src.is_empty() {
            Vec::new()
        } else {
            tape.reset();
            bind.reset();
            let plans = Arc::new(trkx_tensor::EdgePlans::new(
                Arc::clone(&pruned_src),
                Arc::clone(&pruned_dst),
                total_hits,
            ));
            let v = self
                .gnn
                .forward_planned(tape, bind, &x_union, &pruned_y, &plans);
            tape.value(v).data().to_vec()
        };
        timings.gnn_s = t0.elapsed().as_secs_f64();

        // Stage 5: split the union back per event and build tracks.
        let t0 = Instant::now();
        // Kept edge ids are ascending, so each event's pruned edges form
        // a contiguous run in the union order.
        let mut results = Vec::with_capacity(events.len());
        let mut cursor = 0usize;
        for (i, event) in events.iter().enumerate() {
            let (e_start, e_end) = edge_range[i];
            let p_start = cursor;
            while cursor < kept.len() && kept[cursor] < e_end {
                debug_assert!(kept[cursor] >= e_start);
                cursor += 1;
            }
            let p_end = cursor;
            let nb = node_base[i] as u32;
            let src: Vec<u32> = pruned_src[p_start..p_end].iter().map(|&s| s - nb).collect();
            let dst: Vec<u32> = pruned_dst[p_start..p_end].iter().map(|&d| d - nb).collect();
            let labels = pruned_labels[p_start..p_end].to_vec();
            let y: Vec<f32> = pruned_y.data()[p_start * ef..p_end * ef].to_vec();
            let graph = EventGraph {
                num_nodes: event.num_hits(),
                src,
                dst,
                labels,
                x: feats[i].data().to_vec(),
                num_vertex_features: nf,
                y,
                num_edge_features: ef,
                event: (*event).clone(),
            };
            results.push(build_tracks(
                &graph,
                &logits[p_start..p_end],
                self.config.track_threshold,
                self.config.min_hits,
            ));
        }
        timings.tracks_s = t0.elapsed().as_secs_f64();
        (results, timings)
    }
}

/// Wall-clock seconds spent in each pipeline stage for one micro-batch
/// (the whole batch, not per event — the batch shares each forward).
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct StageTimings {
    pub embed_s: f64,
    pub construct_s: f64,
    pub filter_s: f64,
    pub gnn_s: f64,
    pub tracks_s: f64,
    /// Candidate edges built in stage 2 (for edges/sec reporting; absent
    /// in timings serialised before this field existed).
    #[serde(default)]
    pub construct_edges: usize,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total_s(&self) -> f64 {
        self.embed_s + self.construct_s + self.filter_s + self.gnn_s + self.tracks_s
    }
}
