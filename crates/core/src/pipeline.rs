//! End-to-end orchestration of the five-stage Exa.TrkX pipeline
//! (paper Fig. 1): embedding → graph construction → filter → GNN →
//! connected-components track building.

use crate::embedding::{EmbeddingConfig, EmbeddingStage};
use crate::filter::{FilterConfig, FilterStage};
use crate::gnn_stage::{
    infer_logits_with, prepare_graphs, train_minibatch, GnnTrainConfig, PreparedGraph, SamplerKind,
};
use crate::graph_construction::{build_graph_from_embeddings, tune_radius};
use crate::metrics::TrackMetrics;
use crate::tracks::{build_tracks, TrackBuildResult};
use trkx_ddp::DdpConfig;
use trkx_detector::{edge_features, vertex_features, Event, EventGraph};
use trkx_ignn::InteractionGnn;
use trkx_nn::Bindings;
use trkx_tensor::{Matrix, Tape};

/// Full-pipeline configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    pub vertex_features: usize,
    pub edge_features: usize,
    pub embedding: EmbeddingConfig,
    /// Truth-edge efficiency the radius graph must reach.
    pub target_construction_efficiency: f64,
    pub max_radius: f32,
    pub filter: FilterConfig,
    pub gnn: GnnTrainConfig,
    pub gnn_sampler: SamplerKind,
    pub ddp: DdpConfig,
    /// Edge-score threshold for track building.
    pub track_threshold: f32,
    /// Minimum hits per matched track.
    pub min_hits: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            vertex_features: 6,
            edge_features: 2,
            embedding: EmbeddingConfig::default(),
            target_construction_efficiency: 0.96,
            max_radius: 3.0,
            filter: FilterConfig::default(),
            gnn: GnnTrainConfig::default(),
            gnn_sampler: SamplerKind::Bulk { k: 4 },
            ddp: DdpConfig::single(),
            track_threshold: 0.5,
            min_hits: 3,
        }
    }
}

/// A fully trained pipeline, ready for inference on new events.
pub struct TrainedPipeline {
    pub config: PipelineConfig,
    pub embedding: EmbeddingStage,
    pub radius: f32,
    pub filter: FilterStage,
    pub gnn: InteractionGnn,
}

/// Quality summary reported after training.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub embedding_loss: f32,
    pub construction_efficiency: f64,
    pub construction_purity: f64,
    pub filter_precision: f64,
    pub filter_recall: f64,
    pub gnn_val_precision: f64,
    pub gnn_val_recall: f64,
    pub val_track_metrics: TrackMetrics,
}

fn features_of(event: &Event, nf: usize) -> Matrix {
    Matrix::from_vec(event.num_hits(), nf, vertex_features(event, nf))
}

/// Build an [`EventGraph`] from a constructed (or pruned) edge set.
fn event_graph_from_edges(
    event: &Event,
    src: Vec<u32>,
    dst: Vec<u32>,
    labels: Vec<f32>,
    nf: usize,
    ef: usize,
) -> EventGraph {
    let x = vertex_features(event, nf);
    let y = edge_features(event, &src, &dst, ef);
    EventGraph {
        num_nodes: event.num_hits(),
        src,
        dst,
        labels,
        x,
        num_vertex_features: nf,
        y,
        num_edge_features: ef,
        event: event.clone(),
    }
}

/// Train all five stages on `train_events`, validating on `val_events`.
pub fn train_pipeline(
    config: PipelineConfig,
    train_events: &[Event],
    val_events: &[Event],
) -> (TrainedPipeline, PipelineReport) {
    assert!(!train_events.is_empty(), "need training events");
    assert!(!val_events.is_empty(), "need validation events");
    let (nf, ef) = (config.vertex_features, config.edge_features);

    // Stage 1: metric-learning embedding.
    let feats: Vec<Matrix> = train_events.iter().map(|e| features_of(e, nf)).collect();
    let mut embedding = EmbeddingStage::new(nf, config.embedding.clone());
    let pairs: Vec<(&Event, &Matrix)> = train_events.iter().zip(feats.iter()).collect();
    let embedding_loss = embedding.train(&pairs);

    // One pooled tape/bindings pair serves every inference call below
    // (per-event embeds, filter pruning, track-building logits).
    let mut tape = Tape::new();
    let mut bind = Bindings::new();

    // Stage 2: radius tuned on the first training event.
    let radius = tune_radius(
        &train_events[0],
        &embedding.embed_with(&mut tape, &mut bind, &feats[0]),
        config.target_construction_efficiency,
        config.max_radius,
    );
    let mut construction_eff = 0.0;
    let mut construction_pur = 0.0;
    let mut train_graphs = Vec::with_capacity(train_events.len());
    for (event, f) in train_events.iter().zip(&feats) {
        let emb = embedding.embed_with(&mut tape, &mut bind, f);
        let g = build_graph_from_embeddings(event, &emb, radius);
        construction_eff += g.edge_efficiency;
        construction_pur += g.edge_purity;
        train_graphs.push(event_graph_from_edges(
            event, g.src, g.dst, g.labels, nf, ef,
        ));
    }
    construction_eff /= train_events.len() as f64;
    construction_pur /= train_events.len() as f64;
    let val_graphs: Vec<EventGraph> = val_events
        .iter()
        .map(|event| {
            let emb = embedding.embed_with(&mut tape, &mut bind, &features_of(event, nf));
            let g = build_graph_from_embeddings(event, &emb, radius);
            event_graph_from_edges(event, g.src, g.dst, g.labels, nf, ef)
        })
        .collect();

    // Stage 3: filter MLP, trained on the constructed graphs.
    let prepared_train = prepare_graphs(&train_graphs);
    let prepared_val = prepare_graphs(&val_graphs);
    let mut filter = FilterStage::new(nf, ef, config.filter.clone());
    filter.train(&prepared_train);
    let filter_stats = filter.evaluate(&prepared_val);

    // Prune graphs with the filter before the GNN.
    let mut prune = |graphs: &[EventGraph], prepared: &[PreparedGraph]| -> Vec<EventGraph> {
        graphs
            .iter()
            .zip(prepared)
            .map(|(g, pg)| {
                let kept = filter.kept_edges_with(&mut tape, &mut bind, pg);
                let src: Vec<u32> = kept.iter().map(|&i| g.src[i]).collect();
                let dst: Vec<u32> = kept.iter().map(|&i| g.dst[i]).collect();
                let labels: Vec<f32> = kept.iter().map(|&i| g.labels[i]).collect();
                event_graph_from_edges(&g.event, src, dst, labels, nf, ef)
            })
            .collect()
    };
    let pruned_train = prune(&train_graphs, &prepared_train);
    let pruned_val = prune(&val_graphs, &prepared_val);

    // Stage 4: the Interaction GNN with minibatch ShaDow training.
    let prepared_pruned_train = prepare_graphs(&pruned_train);
    let prepared_pruned_val = prepare_graphs(&pruned_val);
    let gnn_result = train_minibatch(
        &config.gnn,
        config.gnn_sampler,
        config.ddp,
        &prepared_pruned_train,
        &prepared_pruned_val,
    );
    let last = gnn_result.epochs.last().expect("at least one epoch");

    // Stage 5: track building on validation events.
    let mut val_track_metrics = TrackMetrics {
        num_true_tracks: 0,
        num_reco_tracks: 0,
        num_matched: 0,
    };
    for (g, pg) in pruned_val.iter().zip(&prepared_pruned_val) {
        let logits = infer_logits_with(&mut tape, &mut bind, &gnn_result.model, pg);
        let r = build_tracks(g, &logits, config.track_threshold, config.min_hits);
        val_track_metrics.merge(&r.metrics);
    }

    let report = PipelineReport {
        embedding_loss,
        construction_efficiency: construction_eff,
        construction_purity: construction_pur,
        filter_precision: filter_stats.precision(),
        filter_recall: filter_stats.recall(),
        gnn_val_precision: last.val_precision,
        gnn_val_recall: last.val_recall,
        val_track_metrics,
    };
    let pipeline = TrainedPipeline {
        config,
        embedding,
        radius,
        filter,
        gnn: gnn_result.model,
    };
    (pipeline, report)
}

/// Serialised form of a trained pipeline: configuration plus one
/// state-dict per learned stage.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PipelineBundle {
    pub config: PipelineConfig,
    pub radius: f32,
    pub embedding: crate::checkpoint::Checkpoint,
    pub filter: crate::checkpoint::Checkpoint,
    pub gnn: crate::checkpoint::Checkpoint,
}

impl TrainedPipeline {
    /// Save every learned stage plus the configuration to one JSON file.
    pub fn save_json(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{Checkpoint, CheckpointError};
        let bundle = PipelineBundle {
            config: self.config.clone(),
            radius: self.radius,
            embedding: Checkpoint::from_params(&self.embedding.mlp.params()),
            filter: Checkpoint::from_params(&self.filter.mlp.params()),
            gnn: Checkpoint::from_params(&self.gnn.params()),
        };
        let json =
            serde_json::to_string(&bundle).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Restore a pipeline from [`TrainedPipeline::save_json`] output.
    pub fn load_json(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        use rand::{rngs::StdRng, SeedableRng};
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let bundle: PipelineBundle =
            serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        let (nf, ef) = (bundle.config.vertex_features, bundle.config.edge_features);
        let mut embedding = EmbeddingStage::new(nf, bundle.config.embedding.clone());
        bundle.embedding.apply_to(&mut embedding.mlp.params_mut())?;
        let mut filter = FilterStage::new(nf, ef, bundle.config.filter.clone());
        bundle.filter.apply_to(&mut filter.mlp.params_mut())?;
        let mut rng = StdRng::seed_from_u64(bundle.config.gnn.seed);
        let mut gnn = InteractionGnn::new(bundle.config.gnn.ignn_config(nf, ef), &mut rng);
        bundle.gnn.apply_to(&mut gnn.params_mut())?;
        Ok(Self {
            config: bundle.config,
            embedding,
            radius: bundle.radius,
            filter,
            gnn,
        })
    }

    /// Run the full inference pipeline on a new event. One pooled tape
    /// serves all three learned stages.
    pub fn reconstruct(&self, event: &Event) -> TrackBuildResult {
        let (nf, ef) = (self.config.vertex_features, self.config.edge_features);
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let f = features_of(event, nf);
        let emb = self.embedding.embed_with(&mut tape, &mut bind, &f);
        let g = build_graph_from_embeddings(event, &emb, self.radius);
        let graph = event_graph_from_edges(event, g.src, g.dst, g.labels, nf, ef);
        let prepared = PreparedGraph::from_event_graph(&graph);
        let kept = self.filter.kept_edges_with(&mut tape, &mut bind, &prepared);
        let src: Vec<u32> = kept.iter().map(|&i| graph.src[i]).collect();
        let dst: Vec<u32> = kept.iter().map(|&i| graph.dst[i]).collect();
        let labels: Vec<f32> = kept.iter().map(|&i| graph.labels[i]).collect();
        let pruned = event_graph_from_edges(event, src, dst, labels, nf, ef);
        let prepared_pruned = PreparedGraph::from_event_graph(&pruned);
        let logits = infer_logits_with(&mut tape, &mut bind, &self.gnn, &prepared_pruned);
        build_tracks(
            &pruned,
            &logits,
            self.config.track_threshold,
            self.config.min_hits,
        )
    }
}
