//! # trkx-core
//!
//! The Exa.TrkX particle-track-reconstruction pipeline (paper Fig. 1) and
//! the paper's augmentations, assembled from the substrate crates:
//!
//! 1. **Embedding** ([`embedding`]) — metric-learning MLP pulling
//!    same-particle hits together;
//! 2. **Graph construction** ([`graph_construction`]) — fixed-radius
//!    nearest-neighbour graph in embedding space;
//! 3. **Filter** ([`filter`]) — cheap per-edge MLP pruning confident fakes;
//! 4. **GNN** ([`gnn_stage`]) — Interaction-GNN edge classification, with
//!    full-graph training (original pipeline, OOM-skip emulation),
//!    PyG-style ShaDow minibatch training, and the paper's matrix-based
//!    bulk ShaDow + coalesced all-reduce training;
//! 5. **Track building** ([`tracks`]) — connected components over kept
//!    edges, double-majority matching against truth.
//!
//! [`pipeline`] wires all five stages end-to-end.

pub mod checkpoint;
pub mod curves;
pub mod early_stopping;
pub mod embedding;
pub mod filter;
pub mod gnn_stage;
pub mod graph_construction;
pub mod metrics;
pub mod pipeline;
pub mod tracks;
pub mod train;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointMeta, TensorEntry, CHECKPOINT_META_VERSION,
};
pub use curves::{best_f1_threshold, efficiency_vs_pt, roc_auc, threshold_sweep, SweepPoint};
pub use early_stopping::EarlyStopping;
pub use embedding::{EmbeddingConfig, EmbeddingStage};
pub use filter::{FilterConfig, FilterStage};
pub use gnn_stage::{
    evaluate, evaluate_with, infer_logits, infer_logits_with, prepare_graphs,
    prepare_graphs_sharded, train_full_graph, train_full_graph_opts, train_full_graph_with_hooks,
    train_minibatch, train_minibatch_hogwild, train_minibatch_opts, train_minibatch_simulated,
    train_minibatch_simulated_opts, train_minibatch_simulated_with_hooks,
    train_minibatch_with_hooks, EpochRecord, GnnTrainConfig, HookFactory, PreparedGraph,
    SamplerKind, TrainResult,
};
pub use graph_construction::{
    build_graph_from_embeddings, build_graph_with_method, tune_radius, ConstructedGraph,
    ConstructionBackend, ConstructionMethod, GraphConstructor,
};
pub use metrics::{match_tracks, EdgeMetrics, TrackMetrics};
pub use pipeline::{
    train_pipeline, PipelineBundle, PipelineConfig, PipelineReport, StageTimings, TrainedPipeline,
};
pub use tracks::{build_tracks, build_tracks_oracle, TrackBuildResult};
pub use train::{
    plan_chunks, with_batch_source, BatchSource, BatchingMode, BestCheckpointHook, Control,
    EarlyStoppingHook, Engine, EpochCtx, EpochReport, EpochStats, FullGraphSource, Hook, HookCtx,
    LrScheduleHook, Monitor, PrefetchBatchSource, SampleChunk, SampledBatch, SampledBatchSource,
    ShardChunks, TelemetryHook, TrainLoop, TrainStep, ValMetrics,
};
