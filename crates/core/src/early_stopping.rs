//! Early stopping on a validation metric — standard training-loop
//! utility for the pipeline stages.

/// Tracks a higher-is-better validation metric and signals to stop as
/// soon as it has gone `patience` consecutive checks (at least one)
/// without improving by more than `min_delta`.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f64,
    best: f64,
    best_epoch: usize,
    checks: usize,
    stale: usize,
}

impl EarlyStopping {
    pub fn new(patience: usize, min_delta: f64) -> Self {
        Self {
            patience,
            min_delta,
            best: f64::NEG_INFINITY,
            best_epoch: 0,
            checks: 0,
            stale: 0,
        }
    }

    /// Record one validation value; returns `true` when training should
    /// stop.
    pub fn update(&mut self, value: f64) -> bool {
        self.checks += 1;
        if value > self.best + self.min_delta {
            self.best = value;
            self.best_epoch = self.checks - 1;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        // `patience` stale checks suffice (a `>` here would tolerate one
        // extra stale epoch); `max(1)` keeps patience 0 from stopping on
        // an improving check where `stale` resets to 0.
        self.stale >= self.patience.max(1)
    }

    /// Best value seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// 0-based epoch index of the best value.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_once_patience_is_reached() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(0.5));
        assert!(!es.update(0.6)); // improvement
        assert!(!es.update(0.55)); // stale 1
        assert!(es.update(0.58)); // stale 2 == patience 2: stop
        assert_eq!(es.best(), 0.6);
        assert_eq!(es.best_epoch(), 1);
    }

    #[test]
    fn min_delta_requires_real_improvement() {
        let mut es = EarlyStopping::new(1, 0.05);
        assert!(!es.update(0.50));
        assert!(es.update(0.52)); // below min_delta: stale 1 == patience 1
    }

    #[test]
    fn improvement_resets_the_stale_counter() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(0.5));
        assert!(!es.update(0.4)); // stale 1
        assert!(!es.update(0.6)); // improvement: stale resets
        assert!(!es.update(0.5)); // stale 1
        assert!(es.update(0.5)); // stale 2
        assert_eq!(es.best_epoch(), 2);
    }

    #[test]
    fn continual_improvement_never_stops() {
        let mut es = EarlyStopping::new(0, 0.0);
        for i in 0..100 {
            assert!(!es.update(i as f64), "stopped at {i}");
        }
        assert_eq!(es.best_epoch(), 99);
    }
}
