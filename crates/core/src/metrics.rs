//! Evaluation metrics: edge-level precision/recall (Figure 4's y-axes)
//! and track-level efficiency/purity for the end-to-end pipeline.

use trkx_nn::BinaryStats;

/// Edge-classification metrics accumulated over a set of graphs
/// ("precision and recall are based on the number of correctly classified
/// edges across validation set particle graphs", paper §IV-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeMetrics {
    pub stats: BinaryStats,
}

impl EdgeMetrics {
    pub fn add_graph(&mut self, logits: &[f32], labels: &[f32], threshold: f32) {
        self.stats
            .merge(&BinaryStats::from_logits(logits, labels, threshold));
    }

    pub fn precision(&self) -> f64 {
        self.stats.precision()
    }

    pub fn recall(&self) -> f64 {
        self.stats.recall()
    }

    pub fn f1(&self) -> f64 {
        self.stats.f1()
    }
}

/// Track-level reconstruction quality under double-majority matching: a
/// reconstructed component matches a truth particle when (a) more than
/// half the component's hits come from that particle and (b) the
/// component contains more than half of the particle's hits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackMetrics {
    /// Truth particles with ≥ `min_hits` hits.
    pub num_true_tracks: usize,
    /// Reconstructed components with ≥ `min_hits` hits.
    pub num_reco_tracks: usize,
    /// Matched (double-majority) pairs.
    pub num_matched: usize,
}

impl TrackMetrics {
    /// Fraction of truth tracks reconstructed.
    pub fn efficiency(&self) -> f64 {
        if self.num_true_tracks == 0 {
            1.0
        } else {
            self.num_matched as f64 / self.num_true_tracks as f64
        }
    }

    /// Fraction of reconstructed tracks that match a truth particle.
    pub fn purity(&self) -> f64 {
        if self.num_reco_tracks == 0 {
            1.0
        } else {
            self.num_matched as f64 / self.num_reco_tracks as f64
        }
    }

    pub fn merge(&mut self, other: &TrackMetrics) {
        self.num_true_tracks += other.num_true_tracks;
        self.num_reco_tracks += other.num_reco_tracks;
        self.num_matched += other.num_matched;
    }
}

/// Match reconstructed components against truth particles.
///
/// `component_of_hit[i]`: reco component label of hit `i`;
/// `particle_of_hit[i]`: truth particle of hit `i` (`None` = noise);
/// `min_hits`: minimum track length counted on both sides (3 is typical).
pub fn match_tracks(
    component_of_hit: &[u32],
    particle_of_hit: &[Option<u32>],
    min_hits: usize,
) -> TrackMetrics {
    assert_eq!(component_of_hit.len(), particle_of_hit.len());
    use std::collections::HashMap;
    let mut particle_hits: HashMap<u32, usize> = HashMap::new();
    for p in particle_of_hit.iter().flatten() {
        *particle_hits.entry(*p).or_insert(0) += 1;
    }
    let mut component_hits: HashMap<u32, usize> = HashMap::new();
    let mut overlap: HashMap<(u32, u32), usize> = HashMap::new();
    for (&c, p) in component_of_hit.iter().zip(particle_of_hit) {
        *component_hits.entry(c).or_insert(0) += 1;
        if let Some(p) = p {
            *overlap.entry((c, *p)).or_insert(0) += 1;
        }
    }
    let num_true_tracks = particle_hits.values().filter(|&&n| n >= min_hits).count();
    let num_reco_tracks = component_hits.values().filter(|&&n| n >= min_hits).count();
    let mut matched_particles = std::collections::HashSet::new();
    for (&(c, p), &o) in &overlap {
        let ch = component_hits[&c];
        let ph = particle_hits[&p];
        if ch >= min_hits && ph >= min_hits && 2 * o > ch && 2 * o > ph {
            matched_particles.insert(p);
        }
    }
    TrackMetrics {
        num_true_tracks,
        num_reco_tracks,
        num_matched: matched_particles.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction() {
        // Two particles, three hits each, components equal particles.
        let comp = [0u32, 0, 0, 1, 1, 1];
        let part = [Some(7u32), Some(7), Some(7), Some(9), Some(9), Some(9)];
        let m = match_tracks(&comp, &part, 3);
        assert_eq!(
            m,
            TrackMetrics {
                num_true_tracks: 2,
                num_reco_tracks: 2,
                num_matched: 2
            }
        );
        assert_eq!(m.efficiency(), 1.0);
        assert_eq!(m.purity(), 1.0);
    }

    #[test]
    fn merged_tracks_fail_double_majority() {
        // One component swallowing two particles: neither particle holds
        // a majority of the merged component.
        let comp = [0u32; 6];
        let part = [Some(1u32), Some(1), Some(1), Some(2), Some(2), Some(2)];
        let m = match_tracks(&comp, &part, 3);
        assert_eq!(m.num_matched, 0);
        assert_eq!(m.efficiency(), 0.0);
    }

    #[test]
    fn split_track_fails_containment() {
        // Particle split across two components of 2 hits each (below
        // min_hits) plus one of 2: no reco track long enough.
        let comp = [0u32, 0, 1, 1];
        let part: Vec<Option<u32>> = vec![Some(5); 4];
        let m = match_tracks(&comp, &part, 3);
        assert_eq!(m.num_true_tracks, 1);
        assert_eq!(m.num_reco_tracks, 0);
        assert_eq!(m.num_matched, 0);
    }

    #[test]
    fn noise_does_not_create_true_tracks() {
        let comp = [0u32, 0, 0, 0];
        let part = [Some(1u32), Some(1), Some(1), None];
        let m = match_tracks(&comp, &part, 3);
        // Component has 4 hits, 3 from particle 1: 2*3 > 4 and 2*3 > 3.
        assert_eq!(m.num_matched, 1);
        assert_eq!(m.num_true_tracks, 1);
    }

    #[test]
    fn edge_metrics_accumulate() {
        let mut em = EdgeMetrics::default();
        em.add_graph(&[5.0, -5.0], &[1.0, 0.0], 0.5);
        em.add_graph(&[5.0, 5.0], &[1.0, 0.0], 0.5);
        assert_eq!(em.stats.tp, 2);
        assert_eq!(em.stats.fp, 1);
        assert!((em.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(em.recall(), 1.0);
    }

    #[test]
    fn degenerate_metrics() {
        let m = TrackMetrics {
            num_true_tracks: 0,
            num_reco_tracks: 0,
            num_matched: 0,
        };
        assert_eq!(m.efficiency(), 1.0);
        assert_eq!(m.purity(), 1.0);
    }
}
