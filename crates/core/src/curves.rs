//! Score-based evaluation curves: ROC AUC, precision/recall sweeps, and
//! the best-threshold search used to pick the track-building cut.

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    pub threshold: f32,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) estimator;
/// ties share rank. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based average rank
        for &idx in &order[i..j] {
            if labels[idx] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Precision/recall/F1 at each of `num_points` evenly spaced probability
/// thresholds (logit scores are converted internally).
pub fn threshold_sweep(logits: &[f32], labels: &[f32], num_points: usize) -> Vec<SweepPoint> {
    assert!(num_points >= 2, "need at least two sweep points");
    (0..num_points)
        .map(|i| {
            let threshold = (i as f32 + 0.5) / num_points as f32;
            let stats = trkx_nn::BinaryStats::from_logits(logits, labels, threshold);
            SweepPoint {
                threshold,
                precision: stats.precision(),
                recall: stats.recall(),
                f1: stats.f1(),
            }
        })
        .collect()
}

/// The threshold maximising F1 over a sweep.
pub fn best_f1_threshold(logits: &[f32], labels: &[f32], num_points: usize) -> SweepPoint {
    threshold_sweep(logits, labels, num_points)
        .into_iter()
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap())
        .expect("non-empty sweep")
}

/// Track efficiency binned by particle pT — the standard HEP efficiency
/// plot. `matched` and `pt` are per-particle; bin edges in GeV.
pub fn efficiency_vs_pt(
    pt: &[f32],
    matched: &[bool],
    bin_edges: &[f32],
) -> Vec<(f32, f32, f64, usize)> {
    assert_eq!(pt.len(), matched.len(), "pt/matched length mismatch");
    assert!(bin_edges.len() >= 2, "need at least one bin");
    let mut out = Vec::with_capacity(bin_edges.len() - 1);
    for w in bin_edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let in_bin: Vec<usize> = pt
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= lo && p < hi)
            .map(|(i, _)| i)
            .collect();
        let total = in_bin.len();
        let n_matched = in_bin.iter().filter(|&&i| matched[i]).count();
        let eff = if total == 0 {
            0.0
        } else {
            n_matched as f64 / total as f64
        };
        out.push((lo, hi, eff, total));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        // Inverted scores give 0.
        let inv: Vec<f32> = scores.iter().map(|s| -s).collect();
        assert_eq!(roc_auc(&inv, &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // Alternating labels with identical scores: ties → 0.5.
        let scores = [0.5f32; 10];
        let labels: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[1.0, 1.0]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_partial_overlap() {
        // One inversion among 2x2: AUC = 3/4.
        let scores = [0.9f32, 0.4, 0.6, 0.1];
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn sweep_tradeoff_is_monotone() {
        let logits: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 10.0).collect();
        let labels: Vec<f32> = (0..100).map(|i| if i > 40 { 1.0 } else { 0.0 }).collect();
        let sweep = threshold_sweep(&logits, &labels, 9);
        for w in sweep.windows(2) {
            assert!(
                w[1].recall <= w[0].recall + 1e-9,
                "recall not non-increasing"
            );
        }
        let best = best_f1_threshold(&logits, &labels, 9);
        assert!(best.f1 >= sweep[0].f1 && best.f1 >= sweep.last().unwrap().f1);
    }

    #[test]
    fn efficiency_vs_pt_bins() {
        let pt = [0.6f32, 0.7, 1.5, 2.5, 3.5, 3.6];
        let matched = [true, false, true, true, false, false];
        let bins = efficiency_vs_pt(&pt, &matched, &[0.5, 1.0, 2.0, 4.0]);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].3, 2);
        assert!((bins[0].2 - 0.5).abs() < 1e-9);
        assert_eq!(bins[1].3, 1);
        assert_eq!(bins[1].2, 1.0);
        assert_eq!(bins[2].3, 3);
        assert!((bins[2].2 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn auc_length_mismatch_panics() {
        let _ = roc_auc(&[1.0], &[1.0, 0.0]);
    }
}
