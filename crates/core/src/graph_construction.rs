//! Stage 2: fixed-radius nearest-neighbour graph construction in the
//! learned embedding space (paper §II-A). Also reports how much of the
//! truth survives construction — edges the radius graph misses can never
//! be recovered downstream.
//!
//! The heavy lifting lives in the pooled [`GraphConstructor`]: it holds
//! a reusable [`trkx_graph::GraphIndex`] (grid FRNN, kd-tree, or brute
//! backend — bit-identical edge lists, see `trkx_graph::radius`) plus
//! the edge/key scratch buffers, so per-event construction in a serving
//! loop allocates nothing once warm. Truth labelling is a sorted-merge
//! join over packed `(src << 32) | dst` keys instead of per-edge hash
//! probes. The free functions below are thin compatibility wrappers
//! that build a throwaway constructor.

use trkx_detector::Event;
use trkx_graph::{Backend, GraphIndex};
use trkx_tensor::Matrix;

/// How stage 2 connects hits in embedding space. The acorn pipeline
/// supports both: fixed-radius (the paper's description) and kNN.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConstructionMethod {
    /// Connect pairs within `radius`.
    FixedRadius { radius: f32 },
    /// Connect each hit to its `k` nearest neighbours.
    Knn { k: usize },
}

/// Which spatial index routes stage-2 candidate generation. All
/// backends produce bit-identical edge lists (the exact distance
/// predicate is shared); this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ConstructionBackend {
    /// Uniform cell grid on the first ≤3 embedding axes (FRNN).
    #[default]
    Grid,
    /// Median-partitioned kd-tree over all axes.
    Kd,
    /// Exhaustive O(n²) scan (reference / tiny events).
    Brute,
}

impl ConstructionBackend {
    fn as_graph_backend(self) -> Backend {
        match self {
            ConstructionBackend::Grid => Backend::Grid,
            ConstructionBackend::Kd => Backend::Kd,
            ConstructionBackend::Brute => Backend::Brute,
        }
    }
}

impl std::str::FromStr for ConstructionBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "grid" => Ok(Self::Grid),
            "kd" => Ok(Self::Kd),
            "brute" => Ok(Self::Brute),
            other => Err(format!(
                "unknown construction backend '{other}' (expected grid|kd|brute)"
            )),
        }
    }
}

/// A constructed candidate-edge graph with truth labels and construction
/// quality metrics.
#[derive(Debug, Clone)]
pub struct ConstructedGraph {
    /// Directed edges, inner layer → outer layer.
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
    /// 1.0 where the pair is a truth track edge.
    pub labels: Vec<f32>,
    /// Fraction of truth edges present among the candidates.
    pub edge_efficiency: f64,
    /// Fraction of candidates that are truth edges.
    pub edge_purity: f64,
}

impl ConstructedGraph {
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

#[inline]
fn pack(s: u32, d: u32) -> u64 {
    (u64::from(s) << 32) | u64::from(d)
}

/// Pooled stage-2 engine: one spatial index plus edge/key scratch,
/// rebuilt per event with retained capacity. Hold one per worker and
/// call [`GraphConstructor::construct`] per event; steady-state
/// construction allocates only the output `ConstructedGraph` vectors.
#[derive(Debug, Default)]
pub struct GraphConstructor {
    index: GraphIndex,
    /// Raw undirected `(i, j)` pairs from the index, `i < j`.
    edges: Vec<(u32, u32)>,
    /// Packed oriented edge keys + candidate indices for the merge join.
    keys: Vec<(u64, u32)>,
    /// Sorted, deduplicated packed truth-edge keys.
    truth_keys: Vec<u64>,
}

impl GraphConstructor {
    pub fn new(backend: ConstructionBackend) -> Self {
        Self {
            index: GraphIndex::new(backend.as_graph_backend()),
            ..Self::default()
        }
    }

    pub fn backend(&self) -> ConstructionBackend {
        match self.index.backend() {
            Backend::Grid => ConstructionBackend::Grid,
            Backend::Kd => ConstructionBackend::Kd,
            Backend::Brute => ConstructionBackend::Brute,
        }
    }

    /// Switch routing backends; takes effect on the next event.
    pub fn set_backend(&mut self, backend: ConstructionBackend) {
        self.index.set_backend(backend.as_graph_backend());
    }

    /// Stage 2 for one event: candidate edges (oriented inner→outer by
    /// layer, same-layer pairs dropped — a particle crosses each barrel
    /// layer once) with merge-joined truth labels.
    pub fn construct(
        &mut self,
        event: &Event,
        embeddings: &Matrix,
        method: ConstructionMethod,
    ) -> ConstructedGraph {
        assert_eq!(embeddings.rows(), event.num_hits(), "one embedding per hit");
        let dim = embeddings.cols();
        match method {
            ConstructionMethod::FixedRadius { radius } => {
                self.index.rebuild(embeddings.data(), dim, radius);
                self.index.radius_edges_into(radius, &mut self.edges);
            }
            ConstructionMethod::Knn { k } => {
                self.index.rebuild(embeddings.data(), dim, 0.0);
                self.index.knn_edges_into(k, &mut self.edges);
            }
        }
        self.load_truth(event);

        // Orient candidates by layer.
        let mut src = Vec::with_capacity(self.edges.len());
        let mut dst = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            let (la, lb) = (event.hits[a as usize].layer, event.hits[b as usize].layer);
            let (s, d) = match la.cmp(&lb) {
                std::cmp::Ordering::Less => (a, b),
                std::cmp::Ordering::Greater => (b, a),
                std::cmp::Ordering::Equal => continue,
            };
            src.push(s);
            dst.push(d);
        }

        // Label by sorted-merge join of packed keys against the truth.
        let mut labels = vec![0.0f32; src.len()];
        self.keys.clear();
        self.keys.extend(
            src.iter()
                .zip(&dst)
                .enumerate()
                .map(|(i, (&s, &d))| (pack(s, d), i as u32)),
        );
        self.keys.sort_unstable();
        let mut found = 0usize;
        let mut t = 0usize;
        for &(key, idx) in &self.keys {
            while t < self.truth_keys.len() && self.truth_keys[t] < key {
                t += 1;
            }
            if t < self.truth_keys.len() && self.truth_keys[t] == key {
                labels[idx as usize] = 1.0;
                found += 1;
            }
        }
        let edge_efficiency = if self.truth_keys.is_empty() {
            1.0
        } else {
            found as f64 / self.truth_keys.len() as f64
        };
        let edge_purity = if labels.is_empty() {
            1.0
        } else {
            found as f64 / labels.len() as f64
        };
        ConstructedGraph {
            src,
            dst,
            labels,
            edge_efficiency,
            edge_purity,
        }
    }

    /// Choose the smallest radius achieving at least `target_efficiency`
    /// (bisection). The index is built **once** and queried at every
    /// bisection midpoint — binning only routes candidates, so queries
    /// at any radius are exact — and each probe runs the count-only
    /// merge join, allocating nothing.
    pub fn tune_radius(
        &mut self,
        event: &Event,
        embeddings: &Matrix,
        target_efficiency: f64,
        max_radius: f32,
    ) -> f32 {
        assert_eq!(embeddings.rows(), event.num_hits(), "one embedding per hit");
        let dim = embeddings.cols();
        // Cell hint at half the search midpoint keeps grid sweeps tight
        // for the radii the bisection actually probes.
        self.index
            .rebuild(embeddings.data(), dim, 0.25 * max_radius);
        self.load_truth(event);
        let (mut lo, mut hi) = (1e-4f32, max_radius);
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            self.index.radius_edges_into(mid, &mut self.edges);
            let eff = self.efficiency_of_edges(event);
            if eff < target_efficiency {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Sorted, deduplicated truth keys for the current event.
    fn load_truth(&mut self, event: &Event) {
        self.truth_keys.clear();
        self.truth_keys
            .extend(event.truth_edges().into_iter().map(|(s, d)| pack(s, d)));
        self.truth_keys.sort_unstable();
        self.truth_keys.dedup();
    }

    /// Count-only efficiency of `self.edges` against the loaded truth
    /// (orientation + merge join, no label vector).
    fn efficiency_of_edges(&mut self, event: &Event) -> f64 {
        if self.truth_keys.is_empty() {
            return 1.0;
        }
        self.keys.clear();
        for &(a, b) in &self.edges {
            let (la, lb) = (event.hits[a as usize].layer, event.hits[b as usize].layer);
            let key = match la.cmp(&lb) {
                std::cmp::Ordering::Less => pack(a, b),
                std::cmp::Ordering::Greater => pack(b, a),
                std::cmp::Ordering::Equal => continue,
            };
            self.keys.push((key, 0));
        }
        self.keys.sort_unstable();
        let mut found = 0usize;
        let mut t = 0usize;
        for &(key, _) in &self.keys {
            while t < self.truth_keys.len() && self.truth_keys[t] < key {
                t += 1;
            }
            if t < self.truth_keys.len() && self.truth_keys[t] == key {
                found += 1;
            }
        }
        found as f64 / self.truth_keys.len() as f64
    }
}

/// Build the candidate graph by connecting hits within `radius` of each
/// other in embedding space (throwaway-constructor wrapper; hold a
/// [`GraphConstructor`] to pool across events).
pub fn build_graph_from_embeddings(
    event: &Event,
    embeddings: &Matrix,
    radius: f32,
) -> ConstructedGraph {
    build_graph_with_method(
        event,
        embeddings,
        ConstructionMethod::FixedRadius { radius },
    )
}

/// Stage 2 with an explicit construction method (radius or kNN).
pub fn build_graph_with_method(
    event: &Event,
    embeddings: &Matrix,
    method: ConstructionMethod,
) -> ConstructedGraph {
    GraphConstructor::default().construct(event, embeddings, method)
}

/// Choose the smallest radius achieving at least `target_efficiency`
/// (bisection over the embedding distances).
pub fn tune_radius(
    event: &Event,
    embeddings: &Matrix,
    target_efficiency: f64,
    max_radius: f32,
) -> f32 {
    GraphConstructor::default().tune_radius(event, embeddings, target_efficiency, max_radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trkx_detector::{simulate_event, DetectorGeometry, GunConfig};

    fn event(seed: u64) -> Event {
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_event(
            &DetectorGeometry::default(),
            &GunConfig::default(),
            20,
            0.1,
            &mut rng,
        )
    }

    /// An oracle embedding: each particle at its own location, noise far
    /// away — radius graph recovers exactly the truth tracks as cliques.
    fn oracle_embedding(ev: &Event) -> Matrix {
        Matrix::from_fn(ev.num_hits(), 2, |r, c| match ev.hits[r].particle {
            Some(p) => {
                let angle = p as f32 * 2.399; // golden-angle spread
                if c == 0 {
                    10.0 * angle.cos()
                } else {
                    10.0 * angle.sin()
                }
            }
            None => 1000.0 + r as f32 * 50.0,
        })
    }

    #[test]
    fn oracle_embedding_gives_full_efficiency() {
        let ev = event(1);
        let emb = oracle_embedding(&ev);
        let g = build_graph_from_embeddings(&ev, &emb, 0.5);
        assert_eq!(g.edge_efficiency, 1.0, "missed truth edges");
        // Candidates are only intra-particle pairs; purity below 1 solely
        // from non-consecutive layer pairs within a particle clique.
        assert!(g.edge_purity > 0.2);
        for ((&s, &d), &l) in g.src.iter().zip(&g.dst).zip(&g.labels) {
            assert!(ev.hits[s as usize].layer < ev.hits[d as usize].layer);
            let same = ev.hits[s as usize].particle == ev.hits[d as usize].particle;
            assert!(same, "cross-particle candidate from oracle embedding");
            let _ = l;
        }
    }

    #[test]
    fn zero_radius_finds_nothing() {
        // All-distinct embedding points: a tiny radius links nothing.
        let ev = event(2);
        let emb = Matrix::from_fn(ev.num_hits(), 2, |r, c| (r * 2 + c) as f32);
        let g = build_graph_from_embeddings(&ev, &emb, 1e-6);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_efficiency, 0.0);
    }

    #[test]
    fn radius_monotonically_increases_efficiency() {
        let ev = event(3);
        // Random-ish embedding from hit coordinates.
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let e_small = build_graph_from_embeddings(&ev, &emb, 0.05).edge_efficiency;
        let e_large = build_graph_from_embeddings(&ev, &emb, 0.5).edge_efficiency;
        assert!(e_large >= e_small);
    }

    #[test]
    fn knn_method_bounds_degree() {
        let ev = event(5);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let g = build_graph_with_method(&ev, &emb, ConstructionMethod::Knn { k: 3 });
        // Undirected candidate count bounded by n*k (each vertex proposes
        // at most k pairs, some same-layer pairs dropped).
        assert!(g.num_edges() <= ev.num_hits() * 3);
        assert!(g.num_edges() > 0);
        for (&s, &d) in g.src.iter().zip(&g.dst) {
            assert!(ev.hits[s as usize].layer < ev.hits[d as usize].layer);
        }
    }

    #[test]
    fn knn_and_radius_agree_on_oracle_embedding() {
        // With the oracle embedding (same-particle hits coincide), both
        // methods recover every truth edge.
        let ev = event(6);
        let emb = oracle_embedding(&ev);
        let knn = build_graph_with_method(&ev, &emb, ConstructionMethod::Knn { k: 12 });
        assert_eq!(knn.edge_efficiency, 1.0, "kNN missed truth edges");
    }

    #[test]
    fn tune_radius_hits_target() {
        let ev = event(4);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let r = tune_radius(&ev, &emb, 0.9, 2.0);
        let g = build_graph_from_embeddings(&ev, &emb, r);
        assert!(
            g.edge_efficiency >= 0.88,
            "efficiency {} at r {r}",
            g.edge_efficiency
        );
    }

    #[test]
    fn all_backends_construct_identical_graphs() {
        let ev = event(7);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let method = ConstructionMethod::FixedRadius { radius: 0.3 };
        let want = GraphConstructor::new(ConstructionBackend::Brute).construct(&ev, &emb, method);
        for backend in [ConstructionBackend::Grid, ConstructionBackend::Kd] {
            let got = GraphConstructor::new(backend).construct(&ev, &emb, method);
            assert_eq!(got.src, want.src, "{backend:?}");
            assert_eq!(got.dst, want.dst, "{backend:?}");
            assert_eq!(got.labels, want.labels, "{backend:?}");
            assert_eq!(got.edge_efficiency, want.edge_efficiency);
            assert_eq!(got.edge_purity, want.edge_purity);
        }
    }

    #[test]
    fn pooled_constructor_matches_throwaway_across_events() {
        let mut pooled = GraphConstructor::default();
        for seed in 10..14 {
            let ev = event(seed);
            let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
                let h = &ev.hits[r];
                [h.x, h.y, h.z][c]
            });
            let a = pooled.construct(&ev, &emb, ConstructionMethod::FixedRadius { radius: 0.25 });
            let b = build_graph_from_embeddings(&ev, &emb, 0.25);
            assert_eq!(a.src, b.src, "seed {seed}");
            assert_eq!(a.dst, b.dst, "seed {seed}");
            assert_eq!(a.labels, b.labels, "seed {seed}");
        }
    }

    #[test]
    fn pooled_tune_radius_matches_throwaway() {
        let ev = event(4);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let fresh = tune_radius(&ev, &emb, 0.9, 2.0);
        for backend in [
            ConstructionBackend::Grid,
            ConstructionBackend::Kd,
            ConstructionBackend::Brute,
        ] {
            let mut ctor = GraphConstructor::new(backend);
            assert_eq!(ctor.tune_radius(&ev, &emb, 0.9, 2.0), fresh, "{backend:?}");
        }
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!(
            "grid".parse::<ConstructionBackend>().unwrap(),
            ConstructionBackend::Grid
        );
        assert_eq!(
            "kd".parse::<ConstructionBackend>().unwrap(),
            ConstructionBackend::Kd
        );
        assert_eq!(
            "brute".parse::<ConstructionBackend>().unwrap(),
            ConstructionBackend::Brute
        );
        assert!("flann".parse::<ConstructionBackend>().is_err());
    }
}
