//! Stage 2: fixed-radius nearest-neighbour graph construction in the
//! learned embedding space (paper §II-A). Also reports how much of the
//! truth survives construction — edges the radius graph misses can never
//! be recovered downstream.

use trkx_detector::Event;
use trkx_graph::{knn_graph, radius_graph};
use trkx_tensor::Matrix;

/// How stage 2 connects hits in embedding space. The acorn pipeline
/// supports both: fixed-radius (the paper's description) and kNN.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConstructionMethod {
    /// Connect pairs within `radius`.
    FixedRadius { radius: f32 },
    /// Connect each hit to its `k` nearest neighbours.
    Knn { k: usize },
}

/// A constructed candidate-edge graph with truth labels and construction
/// quality metrics.
#[derive(Debug, Clone)]
pub struct ConstructedGraph {
    /// Directed edges, inner layer → outer layer.
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
    /// 1.0 where the pair is a truth track edge.
    pub labels: Vec<f32>,
    /// Fraction of truth edges present among the candidates.
    pub edge_efficiency: f64,
    /// Fraction of candidates that are truth edges.
    pub edge_purity: f64,
}

impl ConstructedGraph {
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

/// Build the candidate graph by connecting hits within `radius` of each
/// other in embedding space. Pairs are oriented inner→outer by layer;
/// same-layer pairs are dropped (a particle crosses each barrel layer
/// once).
pub fn build_graph_from_embeddings(
    event: &Event,
    embeddings: &Matrix,
    radius: f32,
) -> ConstructedGraph {
    build_graph_with_method(
        event,
        embeddings,
        ConstructionMethod::FixedRadius { radius },
    )
}

/// Stage 2 with an explicit construction method (radius or kNN).
pub fn build_graph_with_method(
    event: &Event,
    embeddings: &Matrix,
    method: ConstructionMethod,
) -> ConstructedGraph {
    assert_eq!(embeddings.rows(), event.num_hits(), "one embedding per hit");
    let dim = embeddings.cols();
    let pairs = match method {
        ConstructionMethod::FixedRadius { radius } => radius_graph(embeddings.data(), dim, radius),
        ConstructionMethod::Knn { k } => knn_graph(embeddings.data(), dim, k),
    };
    let truth: std::collections::HashSet<(u32, u32)> = event.truth_edges().into_iter().collect();
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut labels = Vec::new();
    for (a, b) in pairs {
        let (la, lb) = (event.hits[a as usize].layer, event.hits[b as usize].layer);
        let (s, d) = match la.cmp(&lb) {
            std::cmp::Ordering::Less => (a, b),
            std::cmp::Ordering::Greater => (b, a),
            std::cmp::Ordering::Equal => continue,
        };
        src.push(s);
        dst.push(d);
        labels.push(if truth.contains(&(s, d)) { 1.0 } else { 0.0 });
    }
    let found: usize = labels.iter().filter(|&&l| l > 0.5).count();
    let edge_efficiency = if truth.is_empty() {
        1.0
    } else {
        found as f64 / truth.len() as f64
    };
    let edge_purity = if labels.is_empty() {
        1.0
    } else {
        found as f64 / labels.len() as f64
    };
    ConstructedGraph {
        src,
        dst,
        labels,
        edge_efficiency,
        edge_purity,
    }
}

/// Choose the smallest radius achieving at least `target_efficiency`
/// (bisection over the embedding distances).
pub fn tune_radius(
    event: &Event,
    embeddings: &Matrix,
    target_efficiency: f64,
    max_radius: f32,
) -> f32 {
    let (mut lo, mut hi) = (1e-4f32, max_radius);
    for _ in 0..20 {
        let mid = 0.5 * (lo + hi);
        let g = build_graph_from_embeddings(event, embeddings, mid);
        if g.edge_efficiency < target_efficiency {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trkx_detector::{simulate_event, DetectorGeometry, GunConfig};

    fn event(seed: u64) -> Event {
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_event(
            &DetectorGeometry::default(),
            &GunConfig::default(),
            20,
            0.1,
            &mut rng,
        )
    }

    /// An oracle embedding: each particle at its own location, noise far
    /// away — radius graph recovers exactly the truth tracks as cliques.
    fn oracle_embedding(ev: &Event) -> Matrix {
        Matrix::from_fn(ev.num_hits(), 2, |r, c| match ev.hits[r].particle {
            Some(p) => {
                let angle = p as f32 * 2.399; // golden-angle spread
                if c == 0 {
                    10.0 * angle.cos()
                } else {
                    10.0 * angle.sin()
                }
            }
            None => 1000.0 + r as f32 * 50.0,
        })
    }

    #[test]
    fn oracle_embedding_gives_full_efficiency() {
        let ev = event(1);
        let emb = oracle_embedding(&ev);
        let g = build_graph_from_embeddings(&ev, &emb, 0.5);
        assert_eq!(g.edge_efficiency, 1.0, "missed truth edges");
        // Candidates are only intra-particle pairs; purity below 1 solely
        // from non-consecutive layer pairs within a particle clique.
        assert!(g.edge_purity > 0.2);
        for ((&s, &d), &l) in g.src.iter().zip(&g.dst).zip(&g.labels) {
            assert!(ev.hits[s as usize].layer < ev.hits[d as usize].layer);
            let same = ev.hits[s as usize].particle == ev.hits[d as usize].particle;
            assert!(same, "cross-particle candidate from oracle embedding");
            let _ = l;
        }
    }

    #[test]
    fn zero_radius_finds_nothing() {
        // All-distinct embedding points: a tiny radius links nothing.
        let ev = event(2);
        let emb = Matrix::from_fn(ev.num_hits(), 2, |r, c| (r * 2 + c) as f32);
        let g = build_graph_from_embeddings(&ev, &emb, 1e-6);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_efficiency, 0.0);
    }

    #[test]
    fn radius_monotonically_increases_efficiency() {
        let ev = event(3);
        // Random-ish embedding from hit coordinates.
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let e_small = build_graph_from_embeddings(&ev, &emb, 0.05).edge_efficiency;
        let e_large = build_graph_from_embeddings(&ev, &emb, 0.5).edge_efficiency;
        assert!(e_large >= e_small);
    }

    #[test]
    fn knn_method_bounds_degree() {
        let ev = event(5);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let g = build_graph_with_method(&ev, &emb, ConstructionMethod::Knn { k: 3 });
        // Undirected candidate count bounded by n*k (each vertex proposes
        // at most k pairs, some same-layer pairs dropped).
        assert!(g.num_edges() <= ev.num_hits() * 3);
        assert!(g.num_edges() > 0);
        for (&s, &d) in g.src.iter().zip(&g.dst) {
            assert!(ev.hits[s as usize].layer < ev.hits[d as usize].layer);
        }
    }

    #[test]
    fn knn_and_radius_agree_on_oracle_embedding() {
        // With the oracle embedding (same-particle hits coincide), both
        // methods recover every truth edge.
        let ev = event(6);
        let emb = oracle_embedding(&ev);
        let knn = build_graph_with_method(&ev, &emb, ConstructionMethod::Knn { k: 12 });
        assert_eq!(knn.edge_efficiency, 1.0, "kNN missed truth edges");
    }

    #[test]
    fn tune_radius_hits_target() {
        let ev = event(4);
        let emb = Matrix::from_fn(ev.num_hits(), 3, |r, c| {
            let h = &ev.hits[r];
            [h.x, h.y, h.z][c]
        });
        let r = tune_radius(&ev, &emb, 0.9, 2.0);
        let g = build_graph_from_embeddings(&ev, &emb, r);
        assert!(
            g.edge_efficiency >= 0.88,
            "efficiency {} at r {r}",
            g.edge_efficiency
        );
    }
}
