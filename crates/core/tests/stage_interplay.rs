//! Cross-stage invariants: what each pipeline stage hands the next must
//! stay consistent with the event's truth.

use rand::{rngs::StdRng, SeedableRng};
use trkx_core::{
    build_graph_from_embeddings, prepare_graphs, EmbeddingConfig, EmbeddingStage, FilterConfig,
    FilterStage, PreparedGraph,
};
use trkx_detector::{
    edge_features, simulate_event, vertex_features, DetectorGeometry, EventGraph, GunConfig,
};
use trkx_tensor::Matrix;

fn event_graph_from(
    ev: &trkx_detector::Event,
    src: Vec<u32>,
    dst: Vec<u32>,
    labels: Vec<f32>,
) -> EventGraph {
    EventGraph {
        num_nodes: ev.num_hits(),
        y: edge_features(ev, &src, &dst, 2),
        src,
        dst,
        labels,
        x: vertex_features(ev, 6),
        num_vertex_features: 6,
        num_edge_features: 2,
        event: ev.clone(),
    }
}

#[test]
fn embedding_to_construction_preserves_truth_subset() {
    let mut rng = StdRng::seed_from_u64(3);
    let ev = simulate_event(
        &DetectorGeometry::default(),
        &GunConfig::default(),
        20,
        0.1,
        &mut rng,
    );
    let x = Matrix::from_vec(ev.num_hits(), 6, vertex_features(&ev, 6));
    let mut stage = EmbeddingStage::new(
        6,
        EmbeddingConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    stage.train(&[(&ev, &x)]);
    let emb = stage.embed(&x);
    let g = build_graph_from_embeddings(&ev, &emb, 1.5);
    // Every labelled-true candidate is a real truth edge.
    let truth: std::collections::HashSet<(u32, u32)> = ev.truth_edges().into_iter().collect();
    for ((&s, &d), &l) in g.src.iter().zip(&g.dst).zip(&g.labels) {
        if l > 0.5 {
            assert!(truth.contains(&(s, d)), "mislabelled candidate ({s},{d})");
        }
    }
}

#[test]
fn filter_pruning_preserves_label_alignment() {
    let mut rng = StdRng::seed_from_u64(4);
    let ev = simulate_event(
        &DetectorGeometry::default(),
        &GunConfig::default(),
        25,
        0.1,
        &mut rng,
    );
    let g0 = trkx_detector::candidate_graph(&ev, 0.25, 0.4);
    let graph = event_graph_from(&ev, g0.src, g0.dst, g0.labels);
    let prepared = prepare_graphs(std::slice::from_ref(&graph));
    let mut filter = FilterStage::new(
        6,
        2,
        FilterConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    filter.train(&prepared);
    let kept = filter.kept_edges(&prepared[0]);
    // Build the pruned graph and re-check that labels still match
    // particle identity edge by edge.
    for &i in &kept {
        let (s, d) = (graph.src[i], graph.dst[i]);
        let same = match (ev.hits[s as usize].particle, ev.hits[d as usize].particle) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        assert_eq!(
            graph.labels[i] > 0.5,
            same,
            "label misaligned after pruning at {i}"
        );
    }
}

#[test]
fn prepared_graph_matrices_match_raw_arrays() {
    let mut rng = StdRng::seed_from_u64(5);
    let ev = simulate_event(
        &DetectorGeometry::default(),
        &GunConfig::default(),
        15,
        0.1,
        &mut rng,
    );
    let g0 = trkx_detector::candidate_graph(&ev, 0.3, 0.4);
    let graph = event_graph_from(&ev, g0.src, g0.dst, g0.labels);
    let p = PreparedGraph::from_event_graph(&graph);
    assert_eq!(p.x.shape(), (graph.num_nodes, 6));
    assert_eq!(p.y.shape(), (graph.num_edges(), 2));
    // Spot-check row contents against the flat arrays.
    for r in [0usize, graph.num_nodes / 2, graph.num_nodes - 1] {
        assert_eq!(p.x.row(r), &graph.x[r * 6..(r + 1) * 6]);
    }
    // Sampler graph agrees on edge count and endpoints.
    assert_eq!(p.sampler.num_edges(), graph.num_edges());
    for (i, (&s, &d)) in graph.src.iter().zip(&graph.dst).enumerate() {
        assert_eq!(p.sampler.directed.get(s as usize, d), Some(i as u32));
    }
}
