//! Unified-training-harness tests: golden-seed determinism (the ported
//! trainers must reproduce the pre-harness per-epoch loss curves
//! bit-for-bit), hook dispatch order, and the early-stop →
//! best-checkpoint-restore interplay.

use std::cell::RefCell;
use std::rc::Rc;

use rand::{rngs::StdRng, SeedableRng};
use trkx_core::train::{
    BestCheckpointHook, Control, EarlyStoppingHook, EpochCtx, EpochReport, EpochStats, Hook,
    HookCtx, LrScheduleHook, Monitor, TrainLoop, TrainStep, ValMetrics,
};
use trkx_core::{
    prepare_graphs, train_full_graph, train_minibatch, train_minibatch_opts,
    train_minibatch_simulated, train_minibatch_simulated_opts, train_minibatch_with_hooks,
    BatchingMode, EmbeddingConfig, EmbeddingStage, FilterConfig, FilterStage, GnnTrainConfig,
    PreparedGraph, SamplerKind, TrainResult,
};
use trkx_ddp::{AllReduceStrategy, DdpConfig};
use trkx_detector::{simulate_event, vertex_features, DatasetConfig, DetectorGeometry, GunConfig};
use trkx_nn::{Adam, Param, StepDecay};
use trkx_sampling::ShadowConfig;
use trkx_tensor::Matrix;

// ---------------------------------------------------------------------
// Golden-seed determinism: curves captured from the pre-harness trainers
// (hand-rolled epoch loops) on 2026-08-06; the `TrainLoop` ports must
// reproduce them exactly.
// ---------------------------------------------------------------------

#[test]
fn embedding_curve_matches_pre_harness_golden() {
    let mut rng = StdRng::seed_from_u64(3);
    let ev = simulate_event(
        &DetectorGeometry::default(),
        &GunConfig::default(),
        25,
        0.1,
        &mut rng,
    );
    let x = Matrix::from_vec(ev.num_hits(), 6, vertex_features(&ev, 6));
    let cfg = EmbeddingConfig {
        epochs: 4,
        seed: 5,
        ..Default::default()
    };
    let mut stage = EmbeddingStage::new(6, cfg);
    let reports = stage.train_with_hooks(&[(&ev, &x)], Vec::new());
    let losses: Vec<f32> = reports.iter().map(|r| r.train_loss).collect();
    assert_eq!(losses, [0.071708046, 0.053873174, 0.054308865, 0.04587508]);
    // No validation pass: val fields are NaN, steps were taken.
    assert!(reports.iter().all(|r| !r.has_val()));
    assert!(reports.iter().all(|r| r.steps == 1));
}

#[test]
fn filter_curve_matches_pre_harness_golden() {
    let graphs = prepare_graphs(&DatasetConfig::ex3_like(0.02).generate(2, 31));
    let cfg = FilterConfig {
        epochs: 4,
        ..Default::default()
    };
    let mut stage = FilterStage::new(6, 2, cfg);
    let reports = stage.train_with_hooks(&graphs, Vec::new());
    let losses: Vec<f32> = reports.iter().map(|r| r.train_loss).collect();
    assert_eq!(losses, [1.2431761, 1.1880053, 1.1489801, 1.116729]);
}

fn tiny_dataset() -> (Vec<PreparedGraph>, Vec<PreparedGraph>) {
    let prepared = prepare_graphs(&DatasetConfig::ex3_like(0.01).generate(3, 21));
    let mut it = prepared.into_iter();
    let train = vec![it.next().unwrap(), it.next().unwrap()];
    let val = vec![it.next().unwrap()];
    (train, val)
}

fn quick_cfg() -> GnnTrainConfig {
    GnnTrainConfig {
        hidden: 16,
        gnn_layers: 2,
        mlp_depth: 2,
        epochs: 3,
        batch_size: 32,
        learning_rate: 2e-3,
        shadow: ShadowConfig {
            depth: 2,
            fanout: 4,
        },
        threshold: 0.5,
        pos_weight: None,
        seed: 3,
    }
}

fn assert_curves(r: &TrainResult, golden_loss: &[f32], golden_val: &[(f64, f64)]) {
    let losses: Vec<f32> = r.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(losses, golden_loss);
    let vals: Vec<(f64, f64)> = r
        .epochs
        .iter()
        .map(|e| (e.val_precision, e.val_recall))
        .collect();
    assert_eq!(vals, golden_val);
}

#[test]
fn full_graph_curve_matches_pre_harness_golden() {
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.epochs = 4;
    let r = train_full_graph(&cfg, &train, &val, None);
    assert_curves(
        &r,
        &[2.3289871, 1.4372379, 1.1029276, 0.9608987],
        &[
            (0.2138157894736842, 0.6132075471698113),
            (0.2483221476510067, 0.6981132075471698),
            (0.3352601156069364, 0.5471698113207547),
            (0.46153846153846156, 0.4528301886792453),
        ],
    );
}

const DDP_GOLDEN_LOSS: [f32; 3] = [0.95322967, 0.57031566, 0.3207678];
const DDP_GOLDEN_VAL: [(f64, f64); 3] = [
    (0.4947916666666667, 0.8962264150943396),
    (0.6134969325153374, 0.9433962264150944),
    (0.7482014388489209, 0.9811320754716981),
];

#[test]
fn threaded_ddp_curve_matches_pre_harness_golden() {
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.batch_size = 16;
    let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
    let r = train_minibatch(&cfg, SamplerKind::Bulk { k: 2 }, ddp, &train, &val);
    assert_curves(&r, &DDP_GOLDEN_LOSS, &DDP_GOLDEN_VAL);
}

#[test]
fn simulated_ddp_curve_matches_pre_harness_golden() {
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.batch_size = 16;
    let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
    let r = train_minibatch_simulated(&cfg, SamplerKind::Bulk { k: 2 }, ddp, &train, &val);
    assert_curves(&r, &DDP_GOLDEN_LOSS, &DDP_GOLDEN_VAL);
}

#[test]
fn baseline_sampler_curve_matches_pre_harness_golden() {
    let (train, val) = tiny_dataset();
    let cfg = quick_cfg();
    let r = train_minibatch(
        &cfg,
        SamplerKind::Baseline,
        DdpConfig::single(),
        &train,
        &val,
    );
    let losses: Vec<f32> = r.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(losses, [1.162513, 0.8109751, 0.61612874]);
}

#[test]
fn prefetch_ddp_curve_matches_pre_harness_golden() {
    // Background-thread sampling must not change what is sampled: the
    // prefetching loader reproduces the sync golden curves bit for bit.
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.batch_size = 16;
    let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
    let r = train_minibatch_opts(
        &cfg,
        SamplerKind::Bulk { k: 2 },
        BatchingMode::prefetch(),
        ddp,
        &train,
        &val,
        None,
    );
    assert_curves(&r, &DDP_GOLDEN_LOSS, &DDP_GOLDEN_VAL);
    // Prefetched epochs are accounted as overlapped by the virtual clock.
    for e in &r.epochs {
        assert!(e.timing.overlapped);
        let serial = e.timing.sampling_s + e.timing.train_s + e.timing.comm_virtual_s;
        assert!(e.timing.total_s() <= serial);
    }
}

#[test]
fn prefetch_baseline_curve_matches_pre_harness_golden() {
    let (train, val) = tiny_dataset();
    let cfg = quick_cfg();
    let r = train_minibatch_opts(
        &cfg,
        SamplerKind::Baseline,
        BatchingMode::prefetch(),
        DdpConfig::single(),
        &train,
        &val,
        None,
    );
    let losses: Vec<f32> = r.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(losses, [1.162513, 0.8109751, 0.61612874]);
}

#[test]
fn simulated_overlap_keeps_curves_and_charges_max() {
    // The single-threaded simulator models overlap purely in the virtual
    // clock: identical math, epoch time max(sampling, train) + comm.
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.batch_size = 16;
    let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
    let r = train_minibatch_simulated_opts(
        &cfg,
        SamplerKind::Bulk { k: 2 },
        true,
        ddp,
        &train,
        &val,
        Vec::new(),
    );
    assert_curves(&r, &DDP_GOLDEN_LOSS, &DDP_GOLDEN_VAL);
    for e in &r.epochs {
        assert!(e.timing.overlapped);
        let t = &e.timing;
        let expect = t.sampling_s.max(t.train_s) + t.comm_virtual_s;
        assert!((t.total_s() - expect).abs() < 1e-12);
        assert!(t.total_s() <= t.sampling_s + t.train_s + t.comm_virtual_s);
    }
}

#[test]
fn threaded_ddp_early_stops_in_lockstep() {
    // A huge min_delta makes epoch 1 count as stale -> stop after epoch 1.
    // Every rank runs the same hook, so the collectives stay aligned and
    // the truncated run matches the full run's prefix exactly.
    let (train, val) = tiny_dataset();
    let mut cfg = quick_cfg();
    cfg.batch_size = 16;
    let ddp = DdpConfig::new(2, AllReduceStrategy::Coalesced);
    let r = train_minibatch_with_hooks(
        &cfg,
        SamplerKind::Bulk { k: 2 },
        ddp,
        &train,
        &val,
        Some(&|_rank| -> Vec<Box<dyn Hook>> {
            vec![Box::new(EarlyStoppingHook::new(
                Monitor::ValPrecision,
                1,
                10.0,
            ))]
        }),
    );
    assert_eq!(r.epochs.len(), 2);
    let losses: Vec<f32> = r.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(losses, DDP_GOLDEN_LOSS[..2].to_vec());
    let vals: Vec<(f64, f64)> = r
        .epochs
        .iter()
        .map(|e| (e.val_precision, e.val_recall))
        .collect();
    assert_eq!(vals, DDP_GOLDEN_VAL[..2].to_vec());
}

// ---------------------------------------------------------------------
// Hook mechanics on a scripted TrainStep (no real model needed).
// ---------------------------------------------------------------------

/// One weight nudged per epoch, with a scripted validation curve.
struct ScriptedStep {
    weight: Param,
    vals: Vec<f64>,
    steps_per_epoch: usize,
}

impl ScriptedStep {
    fn new(vals: Vec<f64>) -> Self {
        Self {
            weight: Param::new("w", Matrix::from_vec(1, 1, vec![0.0])),
            vals,
            steps_per_epoch: 2,
        }
    }
}

impl TrainStep for ScriptedStep {
    fn train_epoch(&mut self, _epoch: usize, ctx: &mut EpochCtx) -> EpochStats {
        // "Training" nudges the weight so snapshots differ per epoch; the
        // empty updates keep the step counter and step hooks honest.
        self.weight.value.apply(|v| v + 1.0);
        for _ in 0..self.steps_per_epoch {
            let mut no_params: Vec<&mut Param> = Vec::new();
            ctx.update(&mut no_params);
        }
        EpochStats {
            loss_sum: 1.0,
            loss_denom: 1,
            steps: ctx.steps(),
            timing: Default::default(),
            cache: None,
        }
    }

    fn validate(&mut self, epoch: usize) -> Option<ValMetrics> {
        let v = self.vals[epoch];
        Some(ValMetrics {
            precision: v,
            recall: v,
        })
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

/// Records every callback invocation into a shared log.
struct RecordingHook(Rc<RefCell<Vec<String>>>);

impl Hook for RecordingHook {
    fn on_epoch_start(&mut self, epoch: usize, _ctx: &mut HookCtx) {
        self.0.borrow_mut().push(format!("start:{epoch}"));
    }
    fn on_step_end(&mut self, epoch: usize, step: usize, _loss: f32) {
        self.0.borrow_mut().push(format!("step:{epoch}.{step}"));
    }
    fn on_epoch_end(&mut self, report: &EpochReport, _ctx: &mut HookCtx) -> Control {
        self.0.borrow_mut().push(format!("end:{}", report.epoch));
        Control::Continue
    }
    fn on_train_end(&mut self, reports: &[EpochReport], _ctx: &mut HookCtx) {
        self.0
            .borrow_mut()
            .push(format!("train_end:{}", reports.len()));
    }
}

#[test]
fn hooks_fire_in_order() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut step = ScriptedStep::new(vec![0.1, 0.2]);
    let reports = TrainLoop::new(Adam::new(1e-3), 2)
        .with_hook(RecordingHook(Rc::clone(&log)))
        .run(&mut step);
    assert_eq!(reports.len(), 2);
    assert_eq!(
        *log.borrow(),
        [
            "start:0",
            "step:0.0",
            "step:0.1",
            "end:0",
            "start:1",
            "step:1.0",
            "step:1.1",
            "end:1",
            "train_end:2",
        ]
    );
}

#[test]
fn early_stop_restores_best_checkpoint() {
    // Metric peaks at epoch 1, then goes stale; patience 1 stops the run
    // at epoch 2 and the restore hook rolls the weight back to the
    // epoch-1 snapshot (weight 2.0: two epochs of +1 nudges).
    let mut step = ScriptedStep::new(vec![0.5, 0.9, 0.4, 0.3, 0.2]);
    let reports = TrainLoop::new(Adam::new(1e-3), 5)
        .with_hook(BestCheckpointHook::new(Monitor::ValPrecision))
        .with_hook(EarlyStoppingHook::new(Monitor::ValPrecision, 1, 0.0))
        .run(&mut step);
    assert_eq!(
        reports.len(),
        3,
        "patience 1 stops after the first stale epoch"
    );
    assert_eq!(step.weight.value.data(), [2.0]);
}

#[test]
fn without_early_stop_last_weights_survive_when_not_restoring() {
    let mut step = ScriptedStep::new(vec![0.5, 0.9, 0.4]);
    TrainLoop::new(Adam::new(1e-3), 3)
        .with_hook(BestCheckpointHook::new(Monitor::ValPrecision).without_restore())
        .run(&mut step);
    assert_eq!(step.weight.value.data(), [3.0]);
}

#[test]
fn lr_schedule_hook_drives_reported_lr() {
    let mut step = ScriptedStep::new(vec![0.1, 0.2, 0.3, 0.4]);
    let reports = TrainLoop::new(Adam::new(1.0), 4)
        .with_hook(LrScheduleHook::new(
            1.0,
            StepDecay {
                period: 2,
                gamma: 0.5,
            },
        ))
        .run(&mut step);
    let lrs: Vec<f32> = reports.iter().map(|r| r.lr).collect();
    assert_eq!(lrs, [1.0, 1.0, 0.5, 0.5]);
}
