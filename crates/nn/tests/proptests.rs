//! Property tests for optimizers, schedules, and gradient plumbing.

use proptest::prelude::*;
use trkx_nn::{
    clip_grad_norm, flatten_grads, unflatten_grads, Adam, CosineAnnealing, LrSchedule, Optimizer,
    Param, Sgd, StepDecay, Warmup,
};
use trkx_tensor::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flatten_unflatten_roundtrip(shapes in proptest::collection::vec((1usize..5, 1usize..5), 1..6),
                                   seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params: Vec<Param> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| {
                let mut p = Param::new(format!("p{i}"), Matrix::zeros(r, c));
                p.grad = Matrix::from_fn(r, c, |_, _| rng.gen_range(-5.0f32..5.0));
                p
            })
            .collect();
        let before: Vec<Vec<f32>> = params.iter().map(|p| p.grad.data().to_vec()).collect();
        let flat = flatten_grads(&params.iter().collect::<Vec<_>>());
        prop_assert_eq!(flat.len(), shapes.iter().map(|&(r, c)| r * c).sum::<usize>());
        let mut refs: Vec<&mut Param> = params.iter_mut().collect();
        unflatten_grads(&flat, &mut refs);
        for (p, b) in params.iter().zip(&before) {
            prop_assert_eq!(p.grad.data(), &b[..]);
        }
    }

    #[test]
    fn clip_never_increases_norm(grads in proptest::collection::vec(-10.0f32..10.0, 1..20),
                                 max_norm in 0.1f32..20.0) {
        let mut p = Param::new("g", Matrix::zeros(1, grads.len()));
        p.grad = Matrix::from_vec(1, grads.len(), grads);
        let before = p.grad.frobenius_norm();
        clip_grad_norm(&mut [&mut p], max_norm);
        let after = p.grad.frobenius_norm();
        prop_assert!(after <= before + 1e-5);
        prop_assert!(after <= max_norm + 1e-4, "after {} > cap {}", after, max_norm);
    }

    #[test]
    fn schedules_stay_in_unit_range(step in 0usize..1000,
                                    period in 1usize..50,
                                    total in 1usize..500) {
        let sd = StepDecay { period, gamma: 0.5 };
        // Extreme step/period ratios may underflow f32 to exactly 0.
        prop_assert!(sd.factor(step) <= 1.0 && sd.factor(step) >= 0.0);
        let ca = CosineAnnealing { total, min_factor: 0.05 };
        let f = ca.factor(step);
        prop_assert!((0.05..=1.0).contains(&f), "cosine factor {}", f);
        let w = Warmup { warmup: 10, inner: ca };
        let wf = w.factor(step);
        prop_assert!((0.0..=1.0).contains(&wf));
    }

    #[test]
    fn cosine_is_monotone_decreasing(total in 10usize..200) {
        let ca = CosineAnnealing { total, min_factor: 0.1 };
        for s in 1..total {
            prop_assert!(ca.factor(s) <= ca.factor(s - 1) + 1e-6);
        }
    }

    #[test]
    fn optimizers_reduce_quadratic_loss(start in -10.0f32..10.0, use_adam in prop::bool::ANY) {
        let mut p = Param::new("x", Matrix::scalar(start));
        let mut adam = Adam::new(0.2);
        let mut sgd = Sgd::new(0.1);
        let opt: &mut dyn Optimizer = if use_adam { &mut adam } else { &mut sgd };
        let loss = |x: f32| (x - 1.0) * (x - 1.0);
        let before = loss(p.value.as_scalar());
        for _ in 0..50 {
            let x = p.value.as_scalar();
            p.grad = Matrix::scalar(2.0 * (x - 1.0));
            opt.step(&mut [&mut p]);
        }
        let after = loss(p.value.as_scalar());
        prop_assert!(after <= before + 1e-6, "loss went {} -> {}", before, after);
    }
}
