//! End-to-end training tests: small MLPs must actually learn.

use rand::{rngs::StdRng, Rng, SeedableRng};
use trkx_nn::{
    bce_with_logits, contrastive_hinge_loss, Activation, Adam, BinaryStats, Bindings, Mlp,
    MlpConfig, Optimizer, Sgd,
};
use trkx_tensor::{Matrix, Tape};

/// Train `mlp` on (x, targets) with BCE for `steps`, return final loss.
fn train_bce(
    mlp: &mut Mlp,
    opt: &mut dyn Optimizer,
    x: &Matrix,
    targets: &[f32],
    steps: usize,
) -> f32 {
    let mut last = f32::INFINITY;
    for _ in 0..steps {
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x.clone());
        let logits = mlp.forward(&mut tape, &mut bind, xv);
        let loss = bce_with_logits(&mut tape, logits, targets, 1.0);
        last = tape.value(loss).as_scalar();
        tape.backward(loss);
        let mut params = mlp.params_mut();
        bind.harvest(&tape, &mut params);
        opt.step(&mut params);
        for p in params {
            p.zero_grad();
        }
    }
    last
}

#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut mlp = Mlp::new(
        MlpConfig::new(&[2, 16, 1]).with_activation(Activation::Tanh),
        "xor",
        &mut rng,
    );
    let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let t = [0.0f32, 1.0, 1.0, 0.0];
    let mut opt = Adam::new(5e-2);
    let loss = train_bce(&mut mlp, &mut opt, &x, &t, 400);
    assert!(loss < 0.05, "XOR loss did not converge: {loss}");

    // Verify predictions.
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let xv = tape.constant(x);
    let logits = mlp.forward(&mut tape, &mut bind, xv);
    let stats = BinaryStats::from_logits(tape.value(logits).data(), &t, 0.5);
    assert_eq!(stats.accuracy(), 1.0);
}

#[test]
fn mlp_learns_linearly_separable_blob_with_sgd() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200;
    let mut xs = Vec::with_capacity(n * 2);
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen_bool(0.5);
        let cx = if label { 2.0 } else { -2.0 };
        xs.push(cx + rng.gen_range(-1.0f32..1.0));
        xs.push(rng.gen_range(-1.0f32..1.0));
        ts.push(if label { 1.0 } else { 0.0 });
    }
    let x = Matrix::from_vec(n, 2, xs);
    let mut mlp = Mlp::new(MlpConfig::new(&[2, 8, 1]), "sep", &mut rng);
    let mut opt = Sgd::new(0.5).with_momentum(0.9);
    let loss = train_bce(&mut mlp, &mut opt, &x, &ts, 150);
    assert!(loss < 0.1, "separable loss did not converge: {loss}");
}

#[test]
fn layer_norm_mlp_trains() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut mlp = Mlp::new(
        MlpConfig::new(&[2, 16, 16, 1]).with_layer_norm(true),
        "ln",
        &mut rng,
    );
    let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let t = [0.0f32, 1.0, 1.0, 0.0];
    let mut opt = Adam::new(2e-2);
    let loss = train_bce(&mut mlp, &mut opt, &x, &t, 500);
    assert!(loss < 0.1, "LayerNorm MLP did not converge: {loss}");
}

#[test]
fn metric_learning_embedding_separates_clusters() {
    // Four points, two "particles" (0,1) and (2,3). Train an embedding MLP
    // with the contrastive hinge loss and check distance structure.
    let mut rng = StdRng::seed_from_u64(13);
    let mut mlp = Mlp::new(
        MlpConfig::new(&[3, 16, 2]).with_activation(Activation::Tanh),
        "emb",
        &mut rng,
    );
    let x = Matrix::from_vec(
        4,
        3,
        vec![
            1.0, 0.2, 0.0, // particle A hit 1
            0.9, 0.3, 0.1, // particle A hit 2
            -0.8, 0.5, 0.2, // particle B hit 1
            -0.9, 0.4, 0.3, // particle B hit 2
        ],
    );
    let pairs_i = [0u32, 2, 0, 1];
    let pairs_j = [1u32, 3, 2, 3];
    let labels = [1.0f32, 1.0, 0.0, 0.0];
    let mut opt = Adam::new(2e-2);
    for _ in 0..300 {
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x.clone());
        let emb = mlp.forward(&mut tape, &mut bind, xv);
        let loss = contrastive_hinge_loss(&mut tape, emb, &pairs_i, &pairs_j, &labels, 1.0);
        tape.backward(loss);
        let mut params = mlp.params_mut();
        bind.harvest(&tape, &mut params);
        opt.step(&mut params);
        for p in params {
            p.zero_grad();
        }
    }
    // Evaluate: same-particle distance must be well below cross-particle.
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let xv = tape.constant(x);
    let emb_var = mlp.forward(&mut tape, &mut bind, xv);
    let emb = tape.value(emb_var);
    let d2 = |a: usize, b: usize| -> f32 {
        emb.row(a)
            .iter()
            .zip(emb.row(b))
            .map(|(x, y)| (x - y) * (x - y))
            .sum()
    };
    assert!(d2(0, 1) < 0.1, "same-particle A distance {}", d2(0, 1));
    assert!(d2(2, 3) < 0.1, "same-particle B distance {}", d2(2, 3));
    assert!(d2(0, 2) > 0.9, "cross-particle distance {}", d2(0, 2));
    assert!(d2(1, 3) > 0.9, "cross-particle distance {}", d2(1, 3));
}

#[test]
fn deeper_mlp_gradcheck_via_harvested_grads() {
    // Harvested parameter gradients must match finite differences of the
    // whole training loss (validates Bindings::harvest end-to-end).
    let mut rng = StdRng::seed_from_u64(17);
    let mut mlp = Mlp::new(MlpConfig::new(&[2, 4, 1]), "gc", &mut rng);
    let x = Matrix::from_vec(3, 2, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]);
    let t = [1.0f32, 0.0, 1.0];

    let loss_at = |mlp: &Mlp| -> f32 {
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x.clone());
        let logits = mlp.forward(&mut tape, &mut bind, xv);
        let loss = bce_with_logits(&mut tape, logits, &t, 1.0);
        tape.value(loss).as_scalar()
    };

    // Analytic.
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let xv = tape.constant(x.clone());
    let logits = mlp.forward(&mut tape, &mut bind, xv);
    let loss = bce_with_logits(&mut tape, logits, &t, 1.0);
    tape.backward(loss);
    {
        let mut params = mlp.params_mut();
        bind.harvest(&tape, &mut params);
    }
    let analytic: Vec<Matrix> = mlp.params().iter().map(|p| p.grad.clone()).collect();

    // Numeric, perturbing each param element.
    let eps = 1e-2f32;
    for (pi, grad) in analytic.iter().enumerate() {
        for e in 0..grad.len() {
            let orig = mlp.params()[pi].value.data()[e];
            mlp.params_mut()[pi].value.data_mut()[e] = orig + eps;
            let plus = loss_at(&mlp);
            mlp.params_mut()[pi].value.data_mut()[e] = orig - eps;
            let minus = loss_at(&mlp);
            mlp.params_mut()[pi].value.data_mut()[e] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let exact = grad.data()[e];
            assert!(
                (numeric - exact).abs() < 2e-2 + 0.05 * exact.abs(),
                "param {pi} elem {e}: numeric {numeric} vs analytic {exact}"
            );
        }
    }
}
