//! Fully connected layers.

use crate::init;
use crate::param::{Bindings, Param};
use rand::Rng;
use trkx_tensor::{Matrix, Tape, Var};

/// Affine layer `y = x W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
}

impl Linear {
    /// Kaiming-uniform initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, name: &str, rng: &mut impl Rng) -> Self {
        Self {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_uniform(in_dim, out_dim, rng),
            ),
            bias: Param::new(format!("{name}.bias"), Matrix::zeros(1, out_dim)),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Record the affine transform on the tape.
    pub fn forward(&self, tape: &mut Tape, bind: &mut Bindings, x: Var) -> Var {
        let w = bind.bind(tape, &self.weight);
        let b = bind.bind(tape, &self.bias);
        let xw = tape.matmul(x, w);
        tape.add_bias(xw, b)
    }

    /// Affine transform fused with ReLU (`relu(x W + b)` as one tape node)
    /// — saves an activation-sized buffer and a full read/write pass per
    /// hidden layer.
    pub fn forward_relu(&self, tape: &mut Tape, bind: &mut Bindings, x: Var) -> Var {
        let w = bind.bind(tape, &self.weight);
        let b = bind.bind(tape, &self.bias);
        let xw = tape.matmul(x, w);
        tape.add_bias_relu(xw, b)
    }

    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, "l", &mut rng);
        // Force known weights.
        l.weight.value = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        l.bias.value = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let x = tape.constant(Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let y = l.forward(&mut tape, &mut bind, x);
        assert_eq!(tape.value(y).data(), &[4.5, 4.5]);
        assert_eq!(bind.len(), 2);
    }

    #[test]
    fn gradient_flows_to_both_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, "l", &mut rng);
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let x = tape.constant(Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]));
        let y = l.forward(&mut tape, &mut bind, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let mut params = l.params_mut();
        bind.harvest(&tape, &mut params);
        assert_eq!(l.bias.grad.data(), &[3.0, 3.0]); // 3 rows
        assert_eq!(l.weight.grad.data(), &[2., 2., 2., 2.]); // col sums of x
    }
}
