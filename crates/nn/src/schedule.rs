//! Learning-rate schedules. The acorn training recipes the paper builds
//! on use warmup plus decay; these schedules compose with any
//! [`crate::Optimizer`] via [`Scheduler::apply`].

/// A learning-rate schedule: maps a 0-based epoch (or step) index to a
/// multiplier of the base learning rate.
pub trait LrSchedule {
    fn factor(&self, step: usize) -> f32;
}

/// Constant schedule (factor 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _step: usize) -> f32 {
        1.0
    }
}

/// Multiply by `gamma` every `period` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    pub period: usize,
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, step: usize) -> f32 {
        self.gamma.powi((step / self.period.max(1)) as i32)
    }
}

/// Cosine annealing from 1 down to `min_factor` over `total` steps
/// (clamped thereafter).
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealing {
    pub total: usize,
    pub min_factor: f32,
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, step: usize) -> f32 {
        let t = (step as f32 / self.total.max(1) as f32).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Linear warmup over `warmup` steps, then delegate to `inner`.
#[derive(Debug, Clone, Copy)]
pub struct Warmup<S> {
    pub warmup: usize,
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, step: usize) -> f32 {
        if step < self.warmup {
            (step + 1) as f32 / self.warmup as f32
        } else {
            self.inner.factor(step - self.warmup)
        }
    }
}

/// Drives an optimizer's learning rate from a schedule.
pub struct Scheduler<S> {
    base_lr: f32,
    schedule: S,
    step: usize,
}

impl<S: LrSchedule> Scheduler<S> {
    pub fn new(base_lr: f32, schedule: S) -> Self {
        Self {
            base_lr,
            schedule,
            step: 0,
        }
    }

    /// Set the optimizer's learning rate for the current step, then
    /// advance. Call once per epoch (or per step, by convention).
    pub fn apply(&mut self, opt: &mut dyn crate::Optimizer) {
        opt.set_learning_rate(self.base_lr * self.schedule.factor(self.step));
        self.step += 1;
    }

    pub fn current_step(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};

    #[test]
    fn step_decay_halves() {
        let s = StepDecay {
            period: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_annealing_endpoints() {
        let s = CosineAnnealing {
            total: 100,
            min_factor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(50) - 0.55).abs() < 1e-3); // midpoint
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        assert!((s.factor(500) - 0.1).abs() < 1e-6); // clamped
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup {
            warmup: 4,
            inner: StepDecay {
                period: 2,
                gamma: 0.5,
            },
        };
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.factor(4), 1.0); // inner step 0
        assert_eq!(s.factor(6), 0.5); // inner step 2
    }

    #[test]
    fn scheduler_drives_optimizer() {
        let mut opt = Sgd::new(1.0);
        let mut sched = Scheduler::new(
            0.8,
            StepDecay {
                period: 1,
                gamma: 0.5,
            },
        );
        sched.apply(&mut opt);
        assert!((opt.learning_rate() - 0.8).abs() < 1e-6);
        sched.apply(&mut opt);
        assert!((opt.learning_rate() - 0.4).abs() < 1e-6);
        assert_eq!(sched.current_step(), 2);
    }

    #[test]
    fn constant_is_identity() {
        assert_eq!(Constant.factor(0), 1.0);
        assert_eq!(Constant.factor(10_000), 1.0);
    }
}
