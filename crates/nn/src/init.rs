//! Weight initialisation schemes.

use rand::Rng;
use trkx_tensor::Matrix;

/// Kaiming (He) uniform init for layers followed by ReLU:
/// `U(-bound, bound)` with `bound = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::rand_uniform(fan_in, fan_out, -bound, bound, rng)
}

/// Xavier/Glorot uniform init for tanh/sigmoid layers:
/// `U(-bound, bound)` with `bound = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::rand_uniform(fan_in, fan_out, -bound, bound, rng)
}

/// Gaussian init with std `sqrt(2 / fan_in)` (He normal).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Matrix::randn(fan_in, fan_out, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn kaiming_uniform_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_uniform(50, 20, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert_eq!(w.shape(), (50, 20));
        // Not degenerate.
        assert!(w.data().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn xavier_uniform_within_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(30, 10, &mut rng);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn kaiming_normal_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = kaiming_normal(100, 100, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / (w.len() - 1) as f32;
        assert!((var - 0.02).abs() < 0.005, "var {var}");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(
            kaiming_uniform(4, 4, &mut r1).data(),
            kaiming_uniform(4, 4, &mut r2).data()
        );
    }
}
