//! First-order optimizers operating on [`Param`] collections.

use crate::param::Param;
use std::collections::HashMap;
use trkx_tensor::Matrix;

/// Common optimizer interface: apply one update from accumulated gradients
/// (callers `zero_grad` afterwards).
pub trait Optimizer {
    fn step(&mut self, params: &mut [&mut Param]);
    fn learning_rate(&self) -> f32;
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: HashMap<u64, Matrix>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    pub fn with_momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            if self.momentum > 0.0 {
                let momentum = self.momentum;
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Matrix::zeros(p.grad.rows(), p.grad.cols()));
                // v = momentum*v + grad ; p -= lr*v, all in place.
                v.apply(|x| x * momentum);
                v.add_assign(&p.grad);
                p.value.axpy(-self.lr, v);
            } else {
                p.value.axpy(-self.lr, &p.grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction, and optional decoupled
/// weight decay (AdamW) via [`Adam::with_weight_decay`].
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled weight decay coefficient (AdamW); 0 disables.
    pub weight_decay: f32,
    t: u64,
    m: HashMap<u64, Matrix>,
    v: HashMap<u64, Matrix>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// AdamW: decay applied to the weights directly, not the gradient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let (r, c) = p.grad.shape();
            let m = self.m.entry(p.id()).or_insert_with(|| Matrix::zeros(r, c));
            let v = self.v.entry(p.id()).or_insert_with(|| Matrix::zeros(r, c));
            for i in 0..p.grad.len() {
                let g = p.grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                let decay = self.lr * self.weight_decay * p.value.data()[i];
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps) + decay;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clip the global gradient L2 norm of `params` to `max_norm`. Returns
/// the pre-clip norm. Standard stabiliser for deep message-passing
/// networks with summed aggregation (message magnitudes grow with degree).
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total_sq: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            for g in p.grad.data_mut() {
                *g *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &mut Param) {
        // loss = (x - 3)^2 per element; grad = 2(x - 3)
        p.grad = p.value.map(|x| 2.0 * (x - 3.0));
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new("x", Matrix::from_vec(1, 2, vec![0.0, 10.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(
            p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-3),
            "{:?}",
            p.value.data()
        );
    }

    #[test]
    fn sgd_momentum_converges_faster_initially() {
        let run = |momentum: f32, steps: usize| {
            let mut p = Param::new("x", Matrix::scalar(0.0));
            let mut opt = Sgd::new(0.02).with_momentum(momentum);
            for _ in 0..steps {
                quadratic_grad(&mut p);
                opt.step(&mut [&mut p]);
            }
            (p.value.as_scalar() - 3.0).abs()
        };
        assert!(run(0.9, 15) < run(0.0, 15));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new("x", Matrix::from_vec(2, 1, vec![-5.0, 20.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(
            p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2),
            "{:?}",
            p.value.data()
        );
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_handles_sparse_like_gradients() {
        // One coordinate gets gradient only occasionally; Adam's second
        // moment keeps its effective step bounded.
        let mut p = Param::new("x", Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let mut opt = Adam::new(0.1);
        for t in 0..200 {
            p.grad = Matrix::from_vec(
                1,
                2,
                vec![
                    2.0 * (p.value.get(0, 0) - 1.0),
                    if t % 10 == 0 {
                        2.0 * (p.value.get(0, 1) - 1.0)
                    } else {
                        0.0
                    },
                ],
            );
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // A weight with zero gradient shrinks under AdamW, stays put
        // under plain Adam.
        let run = |wd: f32| {
            let mut p = Param::new("x", Matrix::scalar(1.0));
            let mut opt = Adam::new(0.1).with_weight_decay(wd);
            for _ in 0..50 {
                p.zero_grad();
                opt.step(&mut [&mut p]);
            }
            p.value.as_scalar()
        };
        assert_eq!(run(0.0), 1.0);
        assert!(run(0.1) < 0.7, "weight did not decay: {}", run(0.1));
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut a = Param::new("a", Matrix::zeros(1, 2));
        let mut b = Param::new("b", Matrix::zeros(1, 1));
        a.grad = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        b.grad = Matrix::from_vec(1, 1, vec![4.0]);
        // Global norm = 5.
        let norm = clip_grad_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.grad.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((b.grad.get(0, 0) - 0.8).abs() < 1e-6);
        // Under the cap: untouched.
        let norm2 = clip_grad_norm(&mut [&mut a, &mut b], 10.0);
        assert!((norm2 - 1.0).abs() < 1e-6);
        assert!((a.grad.get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_mutation() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
