//! Multi-layer perceptrons — the workhorse of every Exa.TrkX stage
//! (embedding, filter, and each `φ` inside the Interaction GNN).

use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::param::{Bindings, Param};
use rand::Rng;
use trkx_tensor::{Tape, Var};

/// Activation applied between (and optionally after) MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Configuration for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Layer widths including input and output, e.g. `[14, 64, 64, 8]`.
    pub sizes: Vec<usize>,
    /// Hidden-layer activation.
    pub activation: Activation,
    /// Activation after the final layer (usually `Identity` for logits).
    pub output_activation: Activation,
    /// Insert LayerNorm after each hidden activation (acorn-style).
    pub layer_norm: bool,
}

impl MlpConfig {
    pub fn new(sizes: &[usize]) -> Self {
        Self {
            sizes: sizes.to_vec(),
            activation: Activation::Relu,
            output_activation: Activation::Identity,
            layer_norm: false,
        }
    }

    pub fn with_layer_norm(mut self, on: bool) -> Self {
        self.layer_norm = on;
        self
    }

    pub fn with_output_activation(mut self, act: Activation) -> Self {
        self.output_activation = act;
        self
    }

    pub fn with_activation(mut self, act: Activation) -> Self {
        self.activation = act;
        self
    }
}

/// A feed-forward network of [`Linear`] layers with activations and
/// optional LayerNorm on hidden layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    norms: Vec<Option<LayerNorm>>,
    config: MlpConfig,
}

impl Mlp {
    pub fn new(config: MlpConfig, name: &str, rng: &mut impl Rng) -> Self {
        assert!(
            config.sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        let mut layers = Vec::new();
        let mut norms = Vec::new();
        for (i, w) in config.sizes.windows(2).enumerate() {
            layers.push(Linear::new(w[0], w[1], &format!("{name}.{i}"), rng));
            let is_hidden = i + 2 < config.sizes.len();
            norms.push(if config.layer_norm && is_hidden {
                Some(LayerNorm::new(w[1], &format!("{name}.{i}.ln")))
            } else {
                None
            });
        }
        Self {
            layers,
            norms,
            config,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.config.sizes[0]
    }

    pub fn out_dim(&self) -> usize {
        *self.config.sizes.last().unwrap()
    }

    /// Number of `Linear` layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    pub fn forward(&self, tape: &mut Tape, bind: &mut Bindings, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            if i < last {
                if self.config.activation == Activation::Relu {
                    // Fused affine+ReLU: one tape node instead of two.
                    x = layer.forward_relu(tape, bind, x);
                } else {
                    x = layer.forward(tape, bind, x);
                    x = self.config.activation.apply(tape, x);
                }
                if let Some(ln) = &self.norms[i] {
                    x = ln.forward(tape, bind, x);
                }
            } else {
                x = layer.forward(tape, bind, x);
                x = self.config.output_activation.apply(tape, x);
            }
        }
        x
    }

    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        for (l, n) in self.layers.iter().zip(&self.norms) {
            out.extend(l.params());
            if let Some(ln) = n {
                out.extend(ln.params());
            }
        }
        out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for (l, n) in self.layers.iter_mut().zip(&mut self.norms) {
            out.extend(l.params_mut());
            if let Some(ln) = n {
                out.extend(ln.params_mut());
            }
        }
        out
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trkx_tensor::Matrix;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(MlpConfig::new(&[6, 16, 16, 1]), "m", &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 1);
        // 6*16+16 + 16*16+16 + 16*1+1 = 112 + 272 + 17
        assert_eq!(mlp.num_parameters(), 401);
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let x = tape.constant(Matrix::zeros(5, 6));
        let y = mlp.forward(&mut tape, &mut bind, x);
        assert_eq!(tape.value(y).shape(), (5, 1));
    }

    #[test]
    fn layer_norm_adds_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let plain = Mlp::new(MlpConfig::new(&[4, 8, 2]), "p", &mut rng);
        let ln = Mlp::new(
            MlpConfig::new(&[4, 8, 2]).with_layer_norm(true),
            "n",
            &mut rng,
        );
        assert_eq!(ln.num_parameters(), plain.num_parameters() + 16);
    }

    #[test]
    fn gradcheck_full_mlp() {
        // Validate the composed MLP backward against finite differences by
        // treating its parameters as gradcheck inputs.
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            MlpConfig::new(&[3, 5, 1]).with_activation(Activation::Tanh),
            "m",
            &mut rng,
        );
        let x = Matrix::randn(4, 3, 0.5, &mut rng);
        let inputs: Vec<Matrix> = mlp.params().iter().map(|p| p.value.clone()).collect();
        let mlp_ref = &mlp;
        let x_ref = &x;
        let report = trkx_tensor::gradcheck(&inputs, 1e-2, move |tape, vars| {
            // Rebind: build the same graph but with gradcheck's leaves as
            // parameter values.
            let xc = tape.constant(x_ref.clone());
            let mut vi = 0;
            let mut h = xc;
            for (i, layer) in mlp_ref.layers.iter().enumerate() {
                let w = vars[vi];
                let b = vars[vi + 1];
                vi += 2;
                let _ = layer;
                let xw = tape.matmul(h, w);
                h = tape.add_bias(xw, b);
                if i + 1 < mlp_ref.layers.len() {
                    h = tape.tanh(h);
                }
            }
            let sq = tape.hadamard(h, h);
            tape.mean_all(sq)
        });
        assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(MlpConfig::new(&[2, 4, 2]), "m", &mut rng);
        let x = Matrix::from_vec(1, 2, vec![0.3, -0.7]);
        let run = |mlp: &Mlp| {
            let mut t = Tape::new();
            let mut b = Bindings::new();
            let xv = t.constant(x.clone());
            let y = mlp.forward(&mut t, &mut b, xv);
            t.value(y).clone()
        };
        assert!(run(&mlp).approx_eq(&run(&mlp), 0.0));
    }
}
