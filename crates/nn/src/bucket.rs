//! Gradient bucket layout for DDP communication.
//!
//! A [`BucketLayout`] greedily packs parameter tensors — in parameter
//! order, so every rank packs identically — into buckets of at most
//! `bucket_bytes` bytes, and owns one persistent flat `f32` buffer per
//! bucket. Packing a bucket copies the member gradients into its buffer
//! and unpacking copies the reduced values back; both are plain
//! `copy_from_slice` loops over preallocated storage, so a training step
//! that routes its all-reduces through a cached layout performs zero
//! steady-state heap allocations (the old per-step `flatten_grads` path
//! allocated a fresh `Vec` per bucket per step).
//!
//! `bucket_bytes = 0` degenerates to one tensor per bucket (the
//! per-tensor strategy) and `bucket_bytes = usize::MAX` to a single
//! bucket (the coalesced strategy); the greedy rule is byte-for-byte the
//! one the cost model's `bucketed_time` replicates, so modeled and real
//! collective call counts always agree.

use crate::param::Param;
use std::ops::Range;

/// One bucket: the contiguous range of parameter indices it covers and
/// its total element count.
#[derive(Debug, Clone)]
struct Bucket {
    params: Range<usize>,
    elems: usize,
}

/// Persistent bucket assignment + flat buffers for a fixed parameter
/// shape census. Build once (per trainer / per rank) and reuse every
/// step.
pub struct BucketLayout {
    buckets: Vec<Bucket>,
    /// One persistent flat buffer per bucket, sized once at construction.
    bufs: Vec<Vec<f32>>,
    /// Per-parameter element counts (validates reuse across steps).
    sizes: Vec<usize>,
    /// Per-parameter owning bucket index.
    owner: Vec<usize>,
    bucket_bytes: usize,
}

impl BucketLayout {
    /// Greedily pack parameters (by element count, in order) into buckets
    /// of at most `bucket_bytes` bytes. A tensor larger than the budget
    /// still gets a bucket (alone), matching the all-reduce strategy arms.
    pub fn from_sizes(sizes: &[usize], bucket_bytes: usize) -> Self {
        let mut buckets = Vec::new();
        let mut owner = vec![0usize; sizes.len()];
        let mut start = 0usize;
        while start < sizes.len() {
            let mut end = start;
            let mut bytes = 0usize;
            let mut elems = 0usize;
            while end < sizes.len() {
                let sz = sizes[end] * 4;
                if end > start && bytes.saturating_add(sz) > bucket_bytes {
                    break;
                }
                bytes += sz;
                elems += sizes[end];
                end += 1;
            }
            for o in owner.iter_mut().take(end).skip(start) {
                *o = buckets.len();
            }
            buckets.push(Bucket {
                params: start..end,
                elems,
            });
            start = end;
        }
        let bufs = buckets.iter().map(|b| vec![0.0f32; b.elems]).collect();
        Self {
            buckets,
            bufs,
            sizes: sizes.to_vec(),
            owner,
            bucket_bytes,
        }
    }

    /// Layout over the given parameter list.
    pub fn new(params: &[&Param], bucket_bytes: usize) -> Self {
        let sizes: Vec<usize> = params.iter().map(|p| p.numel()).collect();
        Self::from_sizes(&sizes, bucket_bytes)
    }

    /// Whether this layout was built for exactly these parameter sizes
    /// and bucket budget (cached-layout validation).
    pub fn matches(&self, params: &[&mut Param], bucket_bytes: usize) -> bool {
        self.bucket_bytes == bucket_bytes
            && self.sizes.len() == params.len()
            && self
                .sizes
                .iter()
                .zip(params.iter())
                .all(|(&s, p)| s == p.numel())
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Index of the bucket owning parameter `param_idx`.
    pub fn bucket_of(&self, param_idx: usize) -> usize {
        self.owner[param_idx]
    }

    /// The contiguous parameter-index range bucket `b` covers.
    pub fn params_in(&self, b: usize) -> Range<usize> {
        self.buckets[b].params.clone()
    }

    /// Total `f32` elements in bucket `b`.
    pub fn bucket_elems(&self, b: usize) -> usize {
        self.buckets[b].elems
    }

    /// Payload bytes of bucket `b` (what one collective call moves).
    pub fn bucket_payload_bytes(&self, b: usize) -> usize {
        self.buckets[b].elems * 4
    }

    /// Copy the member parameters' gradients into bucket `b`'s flat
    /// buffer, in parameter order (the same order `flatten_grads` used).
    pub fn pack(&mut self, b: usize, params: &[&mut Param]) {
        let range = self.buckets[b].params.clone();
        let buf = &mut self.bufs[b];
        let mut off = 0usize;
        for p in &params[range] {
            let g = p.grad.data();
            buf[off..off + g.len()].copy_from_slice(g);
            off += g.len();
        }
        debug_assert_eq!(off, buf.len(), "bucket buffer size mismatch");
    }

    /// Mutable access to bucket `b`'s flat buffer (the all-reduce target).
    pub fn buf_mut(&mut self, b: usize) -> &mut [f32] {
        &mut self.bufs[b]
    }

    /// Copy bucket `b`'s (reduced) buffer back into the member
    /// parameters' gradients.
    pub fn unpack(&self, b: usize, params: &mut [&mut Param]) {
        let range = self.buckets[b].params.clone();
        let buf = &self.bufs[b];
        let mut off = 0usize;
        for p in &mut params[range] {
            let g = p.grad.data_mut();
            g.copy_from_slice(&buf[off..off + g.len()]);
            off += g.len();
        }
        debug_assert_eq!(off, buf.len(), "bucket buffer size mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trkx_tensor::Matrix;

    fn params(sizes: &[(usize, usize)]) -> Vec<Param> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| {
                let mut p = Param::new(format!("p{i}"), Matrix::zeros(r, c));
                p.grad = Matrix::from_fn(r, c, |a, b| (i * 100 + a * c + b) as f32);
                p
            })
            .collect()
    }

    #[test]
    fn degenerate_budgets_match_per_tensor_and_coalesced() {
        let sizes = [4usize, 4, 4];
        let per = BucketLayout::from_sizes(&sizes, 0);
        assert_eq!(per.num_buckets(), 3);
        let coal = BucketLayout::from_sizes(&sizes, usize::MAX);
        assert_eq!(coal.num_buckets(), 1);
        assert_eq!(coal.bucket_elems(0), 12);
    }

    #[test]
    fn greedy_packing_matches_strategy_arms() {
        // 4x4 f32 = 64 bytes each; 128-byte buckets take two tensors.
        let sizes = [16usize; 6];
        let l = BucketLayout::from_sizes(&sizes, 128);
        assert_eq!(l.num_buckets(), 3);
        for b in 0..3 {
            assert_eq!(l.params_in(b), (b * 2)..(b * 2 + 2));
            assert_eq!(l.bucket_payload_bytes(b), 128);
        }
        assert_eq!(l.bucket_of(0), 0);
        assert_eq!(l.bucket_of(3), 1);
        assert_eq!(l.bucket_of(5), 2);
    }

    #[test]
    fn oversized_tensor_gets_its_own_bucket() {
        let l = BucketLayout::from_sizes(&[1024, 1], 16);
        assert_eq!(l.num_buckets(), 2);
        assert_eq!(l.bucket_elems(0), 1024);
        assert_eq!(l.bucket_elems(1), 1);
    }

    #[test]
    fn pack_unpack_roundtrip_preserves_flatten_order() {
        let mut ps = params(&[(2, 2), (1, 3), (2, 1)]);
        let mut refs: Vec<&mut Param> = ps.iter_mut().collect();
        let sizes: Vec<usize> = refs.iter().map(|p| p.numel()).collect();
        let mut l = BucketLayout::from_sizes(&sizes, usize::MAX);
        l.pack(0, &refs);
        let legacy = crate::param::flatten_grads(&refs.iter().map(|p| &**p).collect::<Vec<_>>());
        assert_eq!(l.buf_mut(0), &legacy[..]);
        for v in l.buf_mut(0) {
            *v *= 0.5;
        }
        let expect: Vec<f32> = legacy.iter().map(|v| v * 0.5).collect();
        l.unpack(0, &mut refs);
        let again = crate::param::flatten_grads(&refs.iter().map(|p| &**p).collect::<Vec<_>>());
        assert_eq!(again, expect);
    }

    #[test]
    fn matches_validates_shape_census() {
        let mut ps = params(&[(2, 2), (3, 1)]);
        let refs: Vec<&mut Param> = ps.iter_mut().collect();
        let l = BucketLayout::from_sizes(&[4, 3], 64);
        assert!(l.matches(&refs, 64));
        assert!(!l.matches(&refs, 128));
        let l2 = BucketLayout::from_sizes(&[4, 4], 64);
        assert!(!l2.matches(&refs, 64));
    }
}
