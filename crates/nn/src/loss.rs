//! Loss functions used across the pipeline stages.
//!
//! Binary cross-entropy with logits (edge classification in the filter and
//! GNN stages) is a native tape op; the contrastive hinge loss (stage-1
//! metric-learning embedding) is composed here from tape primitives.

use std::sync::Arc;
use trkx_tensor::{Matrix, Tape, Var};

/// Mean BCE-with-logits over a column of logits. `targets` are 0/1 floats;
/// `pos_weight` rescales positive examples (class imbalance: true edges
/// are rare among radius-graph candidates).
pub fn bce_with_logits(tape: &mut Tape, logits: Var, targets: &[f32], pos_weight: f32) -> Var {
    tape.bce_with_logits(logits, Arc::new(targets.to_vec()), pos_weight)
}

/// Contrastive hinge loss on embedding pairs, the Exa.TrkX metric-learning
/// objective: for embeddings `E` and hit pairs `(i, j)` with labels
/// `y ∈ {0,1}` (same-particle or not),
///
/// `loss = mean( y * d² + (1-y) * max(0, margin - d²) )`
///
/// where `d² = ||E_i - E_j||²`. Pulls same-track hits together, pushes
/// others at least `margin` apart (in squared distance).
pub fn contrastive_hinge_loss(
    tape: &mut Tape,
    embeddings: Var,
    pairs_i: &[u32],
    pairs_j: &[u32],
    labels: &[f32],
    margin: f32,
) -> Var {
    assert_eq!(pairs_i.len(), pairs_j.len(), "pair arrays length mismatch");
    assert_eq!(pairs_i.len(), labels.len(), "labels length mismatch");
    let n = pairs_i.len();
    let ei = tape.gather(embeddings, Arc::new(pairs_i.to_vec()));
    let ej = tape.gather(embeddings, Arc::new(pairs_j.to_vec()));
    let diff = tape.sub(ei, ej);
    let sq = tape.hadamard(diff, diff);
    let d2 = tape.row_sum(sq); // n x 1

    let pos_mask = Arc::new(Matrix::from_vec(n, 1, labels.to_vec()));
    let neg_mask = Arc::new(Matrix::from_vec(
        n,
        1,
        labels.iter().map(|y| 1.0 - y).collect(),
    ));

    // Positive term: y * d².
    let pos = tape.mul_mask(d2, pos_mask);
    // Negative term: (1-y) * relu(margin - d²).
    let neg_inner = tape.scale(d2, -1.0);
    let neg_inner = tape.add_scalar(neg_inner, margin);
    let neg_relu = tape.relu(neg_inner);
    let neg = tape.mul_mask(neg_relu, neg_mask);

    let total = tape.add(pos, neg);
    tape.mean_all(total)
}

/// Classification statistics for a threshold on sigmoid(logits).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BinaryStats {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl BinaryStats {
    /// Count outcomes of `sigmoid(logit) > threshold` against 0/1 targets.
    pub fn from_logits(logits: &[f32], targets: &[f32], threshold: f32) -> Self {
        assert_eq!(logits.len(), targets.len());
        let logit_cut = logit_of(threshold);
        let mut s = Self::default();
        for (&x, &t) in logits.iter().zip(targets) {
            let pred = x > logit_cut;
            let pos = t > 0.5;
            match (pred, pos) {
                (true, true) => s.tp += 1,
                (true, false) => s.fp += 1,
                (false, false) => s.tn += 1,
                (false, true) => s.fn_ += 1,
            }
        }
        s
    }

    /// Merge counts from another batch.
    pub fn merge(&mut self, other: &BinaryStats) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// tp / (tp + fp); 1 if no positives predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// tp / (tp + fn); 1 if no positive targets.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Inverse sigmoid, mapping a probability threshold to logit space.
fn logit_of(p: f32) -> f32 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrastive_loss_zero_when_satisfied() {
        // Two identical positive-pair embeddings and two far-apart
        // negative-pair embeddings: loss = 0.
        let emb = Matrix::from_vec(4, 2, vec![1., 1., 1., 1., 0., 0., 10., 10.]);
        let mut tape = Tape::new();
        let e = tape.leaf(emb);
        let loss = contrastive_hinge_loss(&mut tape, e, &[0, 2], &[1, 3], &[1.0, 0.0], 1.0);
        assert!(tape.value(loss).as_scalar().abs() < 1e-6);
    }

    #[test]
    fn contrastive_loss_penalises_violations() {
        // Positive pair far apart, negative pair close: both penalised.
        let emb = Matrix::from_vec(4, 2, vec![0., 0., 3., 4., 1., 1., 1., 1.]);
        let mut tape = Tape::new();
        let e = tape.leaf(emb);
        let loss = contrastive_hinge_loss(&mut tape, e, &[0, 2], &[1, 3], &[1.0, 0.0], 2.0);
        // pos: d² = 25; neg: relu(2 - 0) = 2 → mean = 13.5
        assert!((tape.value(loss).as_scalar() - 13.5).abs() < 1e-5);
    }

    #[test]
    fn contrastive_gradient_pulls_positives_together() {
        let emb = Matrix::from_vec(2, 2, vec![0., 0., 2., 0.]);
        let mut tape = Tape::new();
        let e = tape.leaf(emb);
        let loss = contrastive_hinge_loss(&mut tape, e, &[0], &[1], &[1.0], 1.0);
        tape.backward(loss);
        let g = tape.grad(e).unwrap();
        // d(d²)/dE_0 = 2(E_0 - E_1) = (-4, 0): gradient moves E_0 toward E_1.
        assert!(g.get(0, 0) < 0.0);
        assert!(g.get(1, 0) > 0.0);
    }

    #[test]
    fn contrastive_gradcheck() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Matrix::randn(5, 3, 0.8, &mut rng);
        let report = trkx_tensor::gradcheck(std::slice::from_ref(&emb), 1e-2, |t, v| {
            contrastive_hinge_loss(t, v[0], &[0, 1, 3], &[2, 4, 0], &[1.0, 0.0, 1.0], 1.5)
        });
        assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn binary_stats_counts() {
        let logits = [2.0, -2.0, 2.0, -2.0];
        let targets = [1.0, 0.0, 0.0, 1.0];
        let s = BinaryStats::from_logits(&logits, &targets, 0.5);
        assert_eq!(
            s,
            BinaryStats {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(s.precision(), 0.5);
        assert_eq!(s.recall(), 0.5);
        assert_eq!(s.f1(), 0.5);
        assert_eq!(s.accuracy(), 0.5);
    }

    #[test]
    fn binary_stats_threshold_moves_tradeoff() {
        let logits = [0.1, 0.4, -0.1, -0.6];
        let targets = [1.0, 1.0, 0.0, 0.0];
        let low = BinaryStats::from_logits(&logits, &targets, 0.3);
        let high = BinaryStats::from_logits(&logits, &targets, 0.7);
        assert!(low.recall() >= high.recall());
        assert!(high.precision() >= low.precision());
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = BinaryStats {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(&BinaryStats {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        });
        assert_eq!(
            a,
            BinaryStats {
                tp: 11,
                fp: 22,
                tn: 33,
                fn_: 44
            }
        );
    }

    #[test]
    fn degenerate_stats_do_not_divide_by_zero() {
        let s = BinaryStats::default();
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.accuracy(), 1.0);
    }
}
