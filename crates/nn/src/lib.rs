//! # trkx-nn
//!
//! Neural-network building blocks on top of [`trkx_tensor`]: parameters
//! and tape bindings, Kaiming/Xavier initialisation, `Linear`/`Mlp`/
//! `LayerNorm` modules, SGD/Adam optimizers, and the losses used by the
//! Exa.TrkX pipeline stages (BCE-with-logits for edge classification,
//! contrastive hinge for the metric-learning embedding).
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use trkx_nn::{Bindings, Mlp, MlpConfig, Optimizer, Adam};
//! use trkx_tensor::{Matrix, Tape};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut mlp = Mlp::new(MlpConfig::new(&[2, 8, 1]), "net", &mut rng);
//! let mut opt = Adam::new(1e-2);
//! for _ in 0..10 {
//!     let mut tape = Tape::new();
//!     let mut bind = Bindings::new();
//!     let x = tape.constant(Matrix::from_vec(4, 2, vec![0.,0., 0.,1., 1.,0., 1.,1.]));
//!     let logits = mlp.forward(&mut tape, &mut bind, x);
//!     let loss = trkx_nn::bce_with_logits(&mut tape, logits, &[0., 1., 1., 0.], 1.0);
//!     tape.backward(loss);
//!     let mut params = mlp.params_mut();
//!     bind.harvest(&tape, &mut params);
//!     opt.step(&mut params);
//!     for p in params { p.zero_grad(); }
//! }
//! ```

pub mod bucket;
pub mod dropout;
pub mod init;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod norm;
pub mod optim;
pub mod param;
pub mod schedule;

pub use bucket::BucketLayout;
pub use dropout::Dropout;
pub use linear::Linear;
pub use loss::{bce_with_logits, contrastive_hinge_loss, BinaryStats};
pub use mlp::{Activation, Mlp, MlpConfig};
pub use norm::LayerNorm;
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use param::{flatten_grads, unflatten_grads, Bindings, Param};
pub use schedule::{Constant, CosineAnnealing, LrSchedule, Scheduler, StepDecay, Warmup};
