//! Inverted dropout, built on the tape's fixed-mask multiply.

use rand::Rng;
use std::sync::Arc;
use trkx_tensor::{Matrix, Tape, Var};

/// Inverted dropout: during training, zeroes each element with
/// probability `p` and scales survivors by `1/(1-p)` so activations keep
/// their expectation; at evaluation it is the identity.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    pub p: f32,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self { p }
    }

    /// Apply during training (draws a fresh mask from `rng`).
    pub fn forward_train(&self, tape: &mut Tape, x: Var, rng: &mut impl Rng) -> Var {
        if self.p == 0.0 {
            return x;
        }
        let (rows, cols) = tape.value(x).shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        tape.mul_mask(x, Arc::new(mask))
    }

    /// Identity at evaluation time.
    pub fn forward_eval(&self, _tape: &mut Tape, x: Var) -> Var {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn eval_is_identity() {
        let d = Dropout::new(0.5);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(3, 3));
        let y = d.forward_eval(&mut tape, x);
        assert_eq!(x, y);
    }

    #[test]
    fn train_preserves_expectation() {
        let d = Dropout::new(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0f64;
        let trials = 200;
        for _ in 0..trials {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::ones(10, 10));
            let y = d.forward_train(&mut tape, x, &mut rng);
            total += tape.value(y).mean() as f64;
        }
        let mean = total / trials as f64;
        assert!((mean - 1.0).abs() < 0.03, "dropout mean {mean}");
    }

    #[test]
    fn zero_probability_is_identity() {
        let d = Dropout::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        let y = d.forward_train(&mut tape, x, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn gradient_flows_only_through_kept_elements() {
        let d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(4, 4));
        let y = d.forward_train(&mut tape, x, &mut rng);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        let out = tape.value(y).clone();
        for (gv, ov) in g.data().iter().zip(out.data()) {
            if *ov == 0.0 {
                assert_eq!(*gv, 0.0);
            } else {
                assert!((gv - 2.0).abs() < 1e-6); // 1/(1-0.5)
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0);
    }
}
