//! Normalisation layers.

use crate::param::{Bindings, Param};
use trkx_tensor::{Matrix, Tape, Var};

/// Per-row LayerNorm with learned gain/offset, as used between the MLP
/// layers of the acorn Interaction GNN.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize, name: &str) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Matrix::ones(1, dim)),
            beta: Param::new(format!("{name}.beta"), Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, tape: &mut Tape, bind: &mut Bindings, x: Var) -> Var {
        let g = bind.bind(tape, &self.gamma);
        let b = bind.bind(tape, &self.beta);
        tape.layer_norm(x, g, b, self.eps)
    }

    pub fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_rows() {
        let ln = LayerNorm::new(4, "ln");
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let x = tape.constant(Matrix::from_vec(
            2,
            4,
            vec![1., 2., 3., 4., 10., 10., 10., 10.],
        ));
        let y = ln.forward(&mut tape, &mut bind, x);
        let v = tape.value(y);
        // Row 0: mean 2.5, normalised values symmetric around 0.
        let r0: f32 = v.row(0).iter().sum();
        assert!(r0.abs() < 1e-4);
        // Constant row maps to ~0 (variance ~ eps).
        assert!(v.row(1).iter().all(|&a| a.abs() < 1e-2));
    }

    #[test]
    fn identity_gamma_beta_gradients_flow() {
        let mut ln = LayerNorm::new(3, "ln");
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let x = tape.constant(Matrix::from_vec(2, 3, vec![1., 5., 2., 0., -1., 3.]));
        let y = ln.forward(&mut tape, &mut bind, x);
        let sq = tape.hadamard(y, y);
        let loss = tape.mean_all(sq);
        tape.backward(loss);
        let mut params = ln.params_mut();
        bind.harvest(&tape, &mut params);
        assert!(ln.gamma.grad.frobenius_norm() > 0.0);
    }
}
