//! Trainable parameters and their binding onto autograd tapes.
//!
//! A [`Param`] owns its value and an accumulated gradient. Each training
//! step creates a fresh [`trkx_tensor::Tape`]; modules *bind* their params
//! as tape leaves through a [`Bindings`] recorder, and after `backward`
//! the recorded `(param, leaf)` pairs pull gradients back out of the tape
//! into `Param::grad` (see [`Bindings::harvest`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use trkx_tensor::{Matrix, Tape, Var};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely identified trainable tensor.
#[derive(Debug, Clone)]
pub struct Param {
    id: u64,
    name: String,
    pub value: Matrix,
    pub grad: Matrix,
}

impl Param {
    /// Create a parameter; a fresh unique id is assigned (clones keep the
    /// original id so DDP replicas line up parameter-for-parameter).
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            value,
            grad,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.len()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// Records which tape leaf each parameter was bound to during a forward
/// pass, so gradients can be harvested after `backward`.
#[derive(Default)]
pub struct Bindings {
    pairs: Vec<(u64, Var)>,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter `p.value` as a gradient-tracked leaf and remember the pairing.
    /// The value is copied into the tape's pooled storage, so repeated
    /// binds across reused tapes allocate nothing.
    pub fn bind(&mut self, tape: &mut Tape, p: &Param) -> Var {
        let v = tape.leaf_copied(&p.value);
        self.pairs.push((p.id, v));
        v
    }

    /// Forget all recorded pairings (keeps capacity). Call together with
    /// [`Tape::reset`] when reusing tape and bindings across steps.
    pub fn reset(&mut self) {
        self.pairs.clear();
    }

    /// Number of recorded bindings.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The recorded `(param id, tape leaf)` pairs, in binding order. The
    /// leaf indices are strictly increasing (each bind pushes a fresh
    /// tape node), so callers may binary-search by `Var`. The overlapped
    /// DDP bridge walks these to accumulate a parameter's gradient the
    /// moment its last-bound leaf finalizes — in exactly the order
    /// [`Bindings::harvest`] would have used.
    pub fn pairs(&self) -> &[(u64, Var)] {
        &self.pairs
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Accumulate tape gradients into the matching params' `grad` fields.
    /// Params bound multiple times accumulate each binding's gradient.
    pub fn harvest(&self, tape: &Tape, params: &mut [&mut Param]) {
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(params.len());
        for (i, p) in params.iter().enumerate() {
            by_id.insert(p.id, i);
        }
        for &(id, var) in &self.pairs {
            if let (Some(&i), Some(g)) = (by_id.get(&id), tape.grad(var)) {
                params[i].grad.add_assign(g);
            }
        }
    }
}

/// Flatten all gradients into one contiguous buffer (coalesced all-reduce
/// operates on this). Order follows the slice order.
pub fn flatten_grads(params: &[&Param]) -> Vec<f32> {
    let total: usize = params.iter().map(|p| p.numel()).sum();
    let mut out = Vec::with_capacity(total);
    for p in params {
        out.extend_from_slice(p.grad.data());
    }
    out
}

/// Scatter a flat buffer back into the params' gradients (inverse of
/// [`flatten_grads`]). Panics if sizes disagree.
pub fn unflatten_grads(flat: &[f32], params: &mut [&mut Param]) {
    let mut off = 0;
    for p in params.iter_mut() {
        let n = p.numel();
        p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
    assert_eq!(off, flat.len(), "flat gradient buffer size mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_but_survive_clone() {
        let a = Param::new("a", Matrix::zeros(1, 1));
        let b = Param::new("b", Matrix::zeros(1, 1));
        assert_ne!(a.id(), b.id());
        assert_eq!(a.clone().id(), a.id());
    }

    #[test]
    fn bind_and_harvest() {
        let mut p = Param::new("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let mut tape = Tape::new();
        let mut b = Bindings::new();
        let w = b.bind(&mut tape, &p);
        let sq = tape.hadamard(w, w);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        b.harvest(&tape, &mut [&mut p]);
        assert_eq!(p.grad.data(), &[4.0, 6.0]);
        // Harvest accumulates on top of existing grads.
        b.harvest(&tape, &mut [&mut p]);
        assert_eq!(p.grad.data(), &[8.0, 12.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn double_binding_accumulates() {
        // Same param used twice in one graph: grads from both uses sum.
        let mut p = Param::new("w", Matrix::from_vec(1, 1, vec![3.0]));
        let mut tape = Tape::new();
        let mut b = Bindings::new();
        let w1 = b.bind(&mut tape, &p);
        let w2 = b.bind(&mut tape, &p);
        let prod = tape.hadamard(w1, w2); // w^2 as two leaves
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        b.harvest(&tape, &mut [&mut p]);
        assert_eq!(p.grad.as_scalar(), 6.0); // 3 + 3
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut a = Param::new("a", Matrix::zeros(2, 2));
        let mut b = Param::new("b", Matrix::zeros(1, 3));
        a.grad = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        b.grad = Matrix::from_vec(1, 3, vec![5., 6., 7.]);
        let flat = flatten_grads(&[&a, &b]);
        assert_eq!(flat, vec![1., 2., 3., 4., 5., 6., 7.]);
        let halved: Vec<f32> = flat.iter().map(|v| v / 2.0).collect();
        unflatten_grads(&halved, &mut [&mut a, &mut b]);
        assert_eq!(a.grad.data(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(b.grad.data(), &[2.5, 3.0, 3.5]);
    }
}
