//! The IGNN must be able to overfit a tiny labelled graph — the standard
//! "can this model learn at all" check.

use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::{bce_with_logits, Adam, BinaryStats, Bindings, Optimizer};
use trkx_tensor::{Matrix, Tape};

#[test]
fn ignn_overfits_tiny_graph() {
    let mut rng = StdRng::seed_from_u64(123);
    let cfg = IgnnConfig::new(3, 2)
        .with_hidden(16)
        .with_gnn_layers(3)
        .with_mlp_depth(2);
    let mut model = InteractionGnn::new(cfg, &mut rng);

    // 6 nodes in two "tracks" (0-1-2 and 3-4-5) plus crossing fake edges.
    let x = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
    let src: Arc<Vec<u32>> = Arc::new(vec![0, 1, 3, 4, 0, 2, 1]);
    let dst: Arc<Vec<u32>> = Arc::new(vec![1, 2, 4, 5, 4, 3, 5]);
    let labels = [1.0f32, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
    let y = Matrix::from_fn(7, 2, |r, c| ((r * 2 + c) as f32 * 0.61).cos());

    let mut opt = Adam::new(5e-3);
    let mut final_loss = f32::INFINITY;
    for _ in 0..150 {
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let logits = model.forward(&mut tape, &mut bind, &x, &y, src.clone(), dst.clone());
        let loss = bce_with_logits(&mut tape, logits, &labels, 1.0);
        final_loss = tape.value(loss).as_scalar();
        tape.backward(loss);
        let mut params = model.params_mut();
        bind.harvest(&tape, &mut params);
        opt.step(&mut params);
        for p in params {
            p.zero_grad();
        }
    }
    assert!(
        final_loss < 0.05,
        "IGNN failed to overfit: loss {final_loss}"
    );

    // Perfect classification of the training edges.
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let logits = model.forward(&mut tape, &mut bind, &x, &y, src, dst);
    let stats = BinaryStats::from_logits(tape.value(logits).data(), &labels, 0.5);
    assert_eq!(stats.accuracy(), 1.0, "{stats:?}");
}

#[test]
fn deeper_network_propagates_information_farther() {
    // A path graph where only the far end's features identify the label:
    // a 1-layer IGNN cannot see it, a 4-layer one can. We check the
    // mechanism (receptive field) rather than training: perturbing a
    // distant node's features must only affect the logit when depth
    // suffices.
    let mut rng = StdRng::seed_from_u64(7);
    let path_edges: (Vec<u32>, Vec<u32>) = ((0..5).collect(), (1..6).collect());
    let x = Matrix::from_fn(6, 2, |r, c| (r + c) as f32 * 0.1);
    let y = Matrix::from_fn(5, 1, |r, _| r as f32 * 0.1);

    for (layers, expect_effect) in [(1usize, false), (4usize, true)] {
        let cfg = IgnnConfig::new(2, 1)
            .with_hidden(8)
            .with_gnn_layers(layers)
            .with_mlp_depth(2);
        let model = InteractionGnn::new(cfg, &mut rng);
        let run = |x: &Matrix| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let v = model.forward(
                &mut tape,
                &mut bind,
                x,
                &y,
                Arc::new(path_edges.0.clone()),
                Arc::new(path_edges.1.clone()),
            );
            // Logit of edge (0, 1) — the far end from node 5.
            tape.value(v).get(0, 0)
        };
        let base = run(&x);
        // Node 4 is 3 hops from node 1; node states propagate L-1 hops
        // (the final layer runs no node update), so L=4 sees it, L=1 not.
        let mut x2 = x.clone();
        x2.set(4, 0, 100.0);
        let perturbed = run(&x2);
        let moved = (base - perturbed).abs() > 1e-6;
        assert_eq!(
            moved, expect_effect,
            "layers={layers}: effect={moved}, expected {expect_effect}"
        );
    }
}
