//! Property tests for the Interaction GNN: shape correctness, finiteness
//! and determinism over random graphs and configurations.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::Bindings;
use trkx_tensor::{Matrix, Tape};

/// Random small graph: (n, edges).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 1..20),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_is_finite_and_correctly_shaped((n, edges) in graph_strategy(),
                                              layers in 1usize..4,
                                              hidden_pow in 2u32..5,
                                              seed in 0u64..100) {
        let hidden = 1usize << hidden_pow;
        let cfg = IgnnConfig::new(3, 2).with_hidden(hidden).with_gnn_layers(layers).with_mlp_depth(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = InteractionGnn::new(cfg, &mut rng);
        let m = edges.len();
        let x = Matrix::randn(n, 3, 1.0, &mut rng);
        let y = Matrix::randn(m, 2, 1.0, &mut rng);
        let src: Arc<Vec<u32>> = Arc::new(edges.iter().map(|e| e.0).collect());
        let dst: Arc<Vec<u32>> = Arc::new(edges.iter().map(|e| e.1).collect());
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let logits = model.forward(&mut tape, &mut bind, &x, &y, src, dst);
        let v = tape.value(logits);
        prop_assert_eq!(v.shape(), (m, 1));
        prop_assert!(v.data().iter().all(|l| l.is_finite()));
    }

    #[test]
    fn forward_is_deterministic((n, edges) in graph_strategy(), seed in 0u64..50) {
        let cfg = IgnnConfig::new(2, 1).with_hidden(4).with_gnn_layers(2).with_mlp_depth(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = InteractionGnn::new(cfg, &mut rng);
        let m = edges.len();
        let x = Matrix::from_fn(n, 2, |r, c| ((r * 2 + c) as f32 * 0.3).sin());
        let y = Matrix::from_fn(m, 1, |r, _| (r as f32 * 0.7).cos());
        let src: Arc<Vec<u32>> = Arc::new(edges.iter().map(|e| e.0).collect());
        let dst: Arc<Vec<u32>> = Arc::new(edges.iter().map(|e| e.1).collect());
        let run = || {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let v = model.forward(&mut tape, &mut bind, &x, &y, src.clone(), dst.clone());
            tape.value(v).clone()
        };
        prop_assert!(run().approx_eq(&run(), 0.0));
    }

    #[test]
    fn disconnected_edge_sets_are_independent(seed in 0u64..50) {
        // Two disjoint components: logits of component A must not change
        // when component B's features change (block-diagonal invariance —
        // the property ShaDow training relies on).
        let cfg = IgnnConfig::new(2, 1).with_hidden(8).with_gnn_layers(3).with_mlp_depth(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = InteractionGnn::new(cfg, &mut rng);
        // Component A: vertices 0-2; component B: vertices 3-5.
        let src: Arc<Vec<u32>> = Arc::new(vec![0, 1, 3, 4]);
        let dst: Arc<Vec<u32>> = Arc::new(vec![1, 2, 4, 5]);
        let x = Matrix::randn(6, 2, 1.0, &mut rng);
        let y = Matrix::randn(4, 1, 1.0, &mut rng);
        let run = |x: &Matrix| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let v = model.forward(&mut tape, &mut bind, x, &y, src.clone(), dst.clone());
            tape.value(v).clone()
        };
        let base = run(&x);
        let mut x2 = x.clone();
        x2.set(4, 0, x2.get(4, 0) + 10.0); // perturb component B
        let perturbed = run(&x2);
        // Component A's edge logits (rows 0, 1) unchanged.
        prop_assert!((base.get(0, 0) - perturbed.get(0, 0)).abs() < 1e-6);
        prop_assert!((base.get(1, 0) - perturbed.get(1, 0)).abs() < 1e-6);
        // Component B's changed.
        prop_assert!((base.get(2, 0) - perturbed.get(2, 0)).abs() > 1e-6
            || (base.get(3, 0) - perturbed.get(3, 0)).abs() > 1e-6);
    }
}
