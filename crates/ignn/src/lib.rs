//! # trkx-ignn
//!
//! The Interaction GNN (paper Algorithm 1, after Battaglia et al.) used by
//! the Exa.TrkX pipeline for binary edge classification: per-edge message
//! MLPs, sum aggregation into both endpoints, per-node update MLPs, skip
//! connections to the input encodings, and an edge-logit decoder. Each of
//! the `L` layers has its own distinct MLPs — which is exactly why the
//! model holds many separate `f x f` parameter matrices and why the
//! paper's coalesced all-reduce matters.

pub mod model;

pub use model::{IgnnConfig, InteractionGnn};
