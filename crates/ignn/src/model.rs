//! Interaction GNN (Battaglia et al., paper ref 3) for edge classification, per
//! the paper's Algorithm 1:
//!
//! ```text
//! X⁰ ← φ(X); Y⁰ ← φ(Y)
//! for l = 0..L:
//!   X' ← [Xˡ X⁰]; Y' ← [Yˡ Y⁰]                  (skip-connections to input encodings)
//!   Yˡ⁺¹ ← φ([Y' X'[A.rows] X'[A.cols]])         (MSG: per-edge MLP)
//!   M_src ← reduce(Yˡ⁺¹, A.rows, +)              (AGG)
//!   M_dst ← reduce(Yˡ⁺¹, A.cols, +)              (AGG)
//!   Xˡ⁺¹ ← φ([M_src M_dst X'])                   (per-node MLP)
//! return φ(Y^L)                                   (edge logits)
//! ```
//!
//! Every `φ` is a distinct MLP. All four per-layer output matrices
//! (`X^{l+1}`, `Y^{l+1}`, `M_src`, `M_dst`) stay alive on the autograd
//! tape for backprop — the `O(L·m·f)` activation footprint that drives
//! the paper's memory argument.

use rand::Rng;
use std::sync::Arc;
use trkx_nn::{Activation, Bindings, Mlp, MlpConfig, Param};
use trkx_tensor::{EdgePlans, Matrix, Tape, Var};

/// Interaction-GNN hyperparameters.
#[derive(Debug, Clone)]
pub struct IgnnConfig {
    /// Input vertex feature dimension.
    pub node_features: usize,
    /// Input edge feature dimension.
    pub edge_features: usize,
    /// Hidden width (64 in the paper).
    pub hidden: usize,
    /// Message-passing iterations (8 in the paper).
    pub gnn_layers: usize,
    /// Depth of each φ MLP (Table I: 3 for CTD, 2 for Ex3).
    pub mlp_depth: usize,
    /// LayerNorm inside the MLPs (acorn uses it; off by default here).
    pub layer_norm: bool,
}

impl IgnnConfig {
    pub fn new(node_features: usize, edge_features: usize) -> Self {
        Self {
            node_features,
            edge_features,
            hidden: 64,
            gnn_layers: 8,
            mlp_depth: 2,
            layer_norm: false,
        }
    }

    pub fn with_hidden(mut self, h: usize) -> Self {
        self.hidden = h;
        self
    }

    pub fn with_gnn_layers(mut self, l: usize) -> Self {
        self.gnn_layers = l;
        self
    }

    pub fn with_mlp_depth(mut self, d: usize) -> Self {
        self.mlp_depth = d;
        self
    }

    fn mlp_sizes(&self, input: usize, output: usize) -> Vec<usize> {
        let mut sizes = vec![input];
        sizes.extend(std::iter::repeat_n(
            self.hidden,
            self.mlp_depth.saturating_sub(1),
        ));
        sizes.push(output);
        sizes
    }

    /// Analytic estimate of the autograd-tape activation footprint (in
    /// f32 elements) of one forward pass over a graph with `n` nodes and
    /// `m` edges — used for the OOM-skip emulation *before* building the
    /// tape. Per layer the tape retains the concatenations, MLP hidden
    /// activations, messages, and aggregates. Tracks the fused
    /// (`GatherConcat`) path, which assembles the edge-MLP input directly
    /// — there are no materialized `X'[src]`/`X'[dst]` intermediates
    /// (the `4h·m` per layer the unfused path would additionally retain).
    pub fn estimate_activation_floats(&self, n: usize, m: usize) -> usize {
        let h = self.hidden;
        let d = self.mlp_depth;
        // Per layer: Y'(2h·m) + fused msg_in (6h·m) + edge MLP activations
        // (~d·h·m) + M_src/M_dst (2·h·n) + X'(2h·n) + node concat (4h·n)
        // + node MLP activations (~d·h·n).
        let per_layer = m * h * (2 + 6 + d) + n * h * (2 + 2 + 4 + d);
        let encoders = n * h * d + m * h * d;
        let decoder = m * (h * (d - 1).max(1) + 1);
        self.gnn_layers * per_layer + encoders + decoder
    }
}

/// The Interaction GNN: encoders, `L` distinct message-passing layers,
/// and an edge-logit decoder.
#[derive(Debug, Clone)]
pub struct InteractionGnn {
    pub config: IgnnConfig,
    node_encoder: Mlp,
    edge_encoder: Mlp,
    edge_mlps: Vec<Mlp>,
    node_mlps: Vec<Mlp>,
    decoder: Mlp,
}

impl InteractionGnn {
    pub fn new(config: IgnnConfig, rng: &mut impl Rng) -> Self {
        let h = config.hidden;
        fn mk<R: Rng>(config: &IgnnConfig, sizes: &[usize], name: &str, rng: &mut R) -> Mlp {
            Mlp::new(
                MlpConfig::new(sizes)
                    .with_layer_norm(config.layer_norm)
                    .with_activation(Activation::Relu),
                name,
                rng,
            )
        }
        let node_encoder = mk(
            &config,
            &config.mlp_sizes(config.node_features, h),
            "node_enc",
            rng,
        );
        let edge_encoder = mk(
            &config,
            &config.mlp_sizes(config.edge_features, h),
            "edge_enc",
            rng,
        );
        let mut edge_mlps = Vec::with_capacity(config.gnn_layers);
        let mut node_mlps = Vec::with_capacity(config.gnn_layers.saturating_sub(1));
        for l in 0..config.gnn_layers {
            // Edge MLP input: [Y'(2h) X'src(2h) X'dst(2h)].
            edge_mlps.push(mk(
                &config,
                &config.mlp_sizes(6 * h, h),
                &format!("edge_mlp.{l}"),
                rng,
            ));
            // Node MLP input: [M_src(h) M_dst(h) X'(2h)]. The final layer
            // has no node update: the decoder reads only Y^L (the paper
            // returns φ(Y^{L-1})), so a last node MLP would never receive
            // gradient.
            if l + 1 < config.gnn_layers {
                node_mlps.push(mk(
                    &config,
                    &config.mlp_sizes(4 * h, h),
                    &format!("node_mlp.{l}"),
                    rng,
                ));
            }
        }
        let decoder = mk(&config, &config.mlp_sizes(h, 1), "decoder", rng);
        Self {
            config,
            node_encoder,
            edge_encoder,
            edge_mlps,
            node_mlps,
            decoder,
        }
    }

    /// Forward pass: returns per-edge logits (`m x 1`).
    ///
    /// `x`: `n x node_features` vertex features; `y`: `m x edge_features`
    /// edge features; `src`/`dst`: edge endpoints (COO rows/cols of A).
    ///
    /// Builds the [`EdgePlans`] for this edge list and runs the fused
    /// path ([`InteractionGnn::forward_planned`]). Callers that reuse one
    /// subgraph across steps should build the plans once and call
    /// `forward_planned` directly — plan construction is `O(n + m)` but
    /// pointless to repeat.
    pub fn forward(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        x: &Matrix,
        y: &Matrix,
        src: Arc<Vec<u32>>,
        dst: Arc<Vec<u32>>,
    ) -> Var {
        let plans = Arc::new(EdgePlans::new(src, dst, x.rows()));
        self.forward_planned(tape, bind, x, y, &plans)
    }

    /// Fused forward pass over a precomputed edge plan: one
    /// `GatherConcat` node assembles each layer's edge-MLP input in a
    /// single pass (no `X'[src]`/`X'[dst]` intermediates on the tape) and
    /// the AGG scatters run the deterministic parallel segment-reduce.
    /// Bit-identical to [`InteractionGnn::forward_unfused`] in both
    /// values and gradients, at any thread count.
    pub fn forward_planned(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        x: &Matrix,
        y: &Matrix,
        plans: &Arc<EdgePlans>,
    ) -> Var {
        self.check_inputs(x, y, plans.num_edges());
        assert_eq!(plans.nodes(), x.rows(), "plan node count mismatch");

        let xin = tape.constant_copied(x);
        let yin = tape.constant_copied(y);
        let x0 = self.node_encoder.forward(tape, bind, xin);
        let y0 = self.edge_encoder.forward(tape, bind, yin);
        let mut xl = x0;
        let mut yl = y0;
        for l in 0..self.config.gnn_layers {
            // Skip-connections to the input encodings.
            let x_cat = tape.concat_cols(&[xl, x0]);
            let y_cat = tape.concat_cols(&[yl, y0]);
            // MSG: fused [Y' X'[src] X'[dst]] assembly + per-edge MLP.
            let msg_in = tape.gather_concat(y_cat, x_cat, plans.clone());
            let y_next = self.edge_mlps[l].forward(tape, bind, msg_in);
            yl = y_next;
            if l + 1 < self.config.gnn_layers {
                // AGG: sum messages into both endpoints (plan-driven).
                let m_src =
                    tape.scatter_add_planned(y_next, plans.src.clone(), plans.src_plan.clone());
                let m_dst =
                    tape.scatter_add_planned(y_next, plans.dst.clone(), plans.dst_plan.clone());
                let node_in = tape.concat_cols(&[m_src, m_dst, x_cat]);
                xl = self.node_mlps[l].forward(tape, bind, node_in);
            }
        }
        self.decoder.forward(tape, bind, yl)
    }

    /// Unfused reference forward pass: explicit per-endpoint gathers and
    /// a three-way concat, serial scatter on the backward. Kept as the
    /// ground truth the fused path is parity-tested against.
    pub fn forward_unfused(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        x: &Matrix,
        y: &Matrix,
        src: Arc<Vec<u32>>,
        dst: Arc<Vec<u32>>,
    ) -> Var {
        let n = x.rows();
        self.check_inputs(x, y, src.len());
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");

        let xin = tape.constant_copied(x);
        let yin = tape.constant_copied(y);
        let x0 = self.node_encoder.forward(tape, bind, xin);
        let y0 = self.edge_encoder.forward(tape, bind, yin);
        let mut xl = x0;
        let mut yl = y0;
        for l in 0..self.config.gnn_layers {
            // Skip-connections to the input encodings.
            let x_cat = tape.concat_cols(&[xl, x0]);
            let y_cat = tape.concat_cols(&[yl, y0]);
            // MSG: gather endpoint features per edge, concat with the edge
            // state, and run the per-edge MLP.
            let x_src = tape.gather(x_cat, src.clone());
            let x_dst = tape.gather(x_cat, dst.clone());
            let msg_in = tape.concat_cols(&[y_cat, x_src, x_dst]);
            let y_next = self.edge_mlps[l].forward(tape, bind, msg_in);
            yl = y_next;
            if l + 1 < self.config.gnn_layers {
                // AGG: sum messages into both endpoints.
                let m_src = tape.scatter_add(y_next, src.clone(), n);
                let m_dst = tape.scatter_add(y_next, dst.clone(), n);
                let node_in = tape.concat_cols(&[m_src, m_dst, x_cat]);
                xl = self.node_mlps[l].forward(tape, bind, node_in);
            }
        }
        self.decoder.forward(tape, bind, yl)
    }

    fn check_inputs(&self, x: &Matrix, y: &Matrix, num_edges: usize) {
        assert_eq!(
            x.cols(),
            self.config.node_features,
            "node feature dim mismatch"
        );
        assert_eq!(
            y.cols(),
            self.config.edge_features,
            "edge feature dim mismatch"
        );
        assert_eq!(num_edges, y.rows(), "edge count mismatch");
    }

    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.node_encoder.params();
        p.extend(self.edge_encoder.params());
        for m in &self.edge_mlps {
            p.extend(m.params());
        }
        for m in &self.node_mlps {
            p.extend(m.params());
        }
        p.extend(self.decoder.params());
        p
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.node_encoder.params_mut();
        p.extend(self.edge_encoder.params_mut());
        for m in &mut self.edge_mlps {
            p.extend(m.params_mut());
        }
        for m in &mut self.node_mlps {
            p.extend(m.params_mut());
        }
        p.extend(self.decoder.params_mut());
        p
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Number of distinct parameter matrices (the all-reduce message
    /// count of the *naive* DDP path; the paper coalesces these).
    pub fn num_parameter_tensors(&self) -> usize {
        self.params().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_config() -> IgnnConfig {
        IgnnConfig::new(3, 2)
            .with_hidden(8)
            .with_gnn_layers(2)
            .with_mlp_depth(2)
    }

    fn tiny_graph() -> (Matrix, Matrix, Vec<u32>, Vec<u32>) {
        // 4 nodes, 5 edges.
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let y = Matrix::randn(5, 2, 1.0, &mut rng);
        (x, y, vec![0, 0, 1, 2, 3], vec![1, 2, 2, 3, 0])
    }

    #[test]
    fn forward_shape_is_edges_by_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = InteractionGnn::new(tiny_config(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let logits = model.forward(&mut tape, &mut bind, &x, &y, Arc::new(src), Arc::new(dst));
        assert_eq!(tape.value(logits).shape(), (5, 1));
        assert!(tape.value(logits).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parameter_census() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = InteractionGnn::new(tiny_config(), &mut rng);
        // encoders: 2 MLPs x depth 2 x (W + b) = 8 tensors; 2 edge MLPs x
        // 4 = 8; 1 node MLP (final layer has none) x 4 = 4; decoder 4.
        assert_eq!(model.num_parameter_tensors(), 24);
        assert!(model.num_parameters() > 0);
        // Distinct MLPs per layer: changing one layer's weight changes
        // only that tensor count... sanity: hidden=8 edge MLP first layer
        // weight is 48x8.
        let p = model.params();
        assert!(p.iter().any(|p| p.value.shape() == (48, 8)));
        assert!(p.iter().any(|p| p.value.shape() == (32, 8)));
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = InteractionGnn::new(tiny_config(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let logits = model.forward(&mut tape, &mut bind, &x, &y, Arc::new(src), Arc::new(dst));
        let loss = trkx_nn::bce_with_logits(&mut tape, logits, &[1., 0., 1., 0., 1.], 1.0);
        tape.backward(loss);
        let mut params = model.params_mut();
        bind.harvest(&tape, &mut params);
        for p in model.params() {
            assert!(
                p.grad.frobenius_norm() > 0.0,
                "parameter {} received no gradient",
                p.name()
            );
        }
    }

    #[test]
    fn message_passing_respects_graph_structure() {
        // Changing a node's features must change logits of edges within
        // gnn_layers hops, and node order must not matter beyond identity.
        let mut rng = StdRng::seed_from_u64(5);
        let model = InteractionGnn::new(tiny_config(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let run = |x: &Matrix| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let v = model.forward(
                &mut tape,
                &mut bind,
                x,
                &y,
                Arc::new(src.clone()),
                Arc::new(dst.clone()),
            );
            tape.value(v).clone()
        };
        let base = run(&x);
        let mut x2 = x.clone();
        x2.set(0, 0, x2.get(0, 0) + 1.0);
        let perturbed = run(&x2);
        assert!(
            base.max_abs_diff(&perturbed) > 1e-5,
            "perturbation had no effect"
        );
    }

    #[test]
    fn edge_permutation_equivariance() {
        // Permuting the edge list permutes the logits identically.
        let mut rng = StdRng::seed_from_u64(6);
        let model = InteractionGnn::new(tiny_config(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let perm = [4usize, 2, 0, 3, 1];
        let y_p = Matrix::from_fn(5, 2, |r, c| y.get(perm[r], c));
        let src_p: Vec<u32> = perm.iter().map(|&i| src[i]).collect();
        let dst_p: Vec<u32> = perm.iter().map(|&i| dst[i]).collect();
        let run = |y: &Matrix, s: Vec<u32>, d: Vec<u32>| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let v = model.forward(&mut tape, &mut bind, &x, y, Arc::new(s), Arc::new(d));
            tape.value(v).clone()
        };
        let base = run(&y, src, dst);
        let permuted = run(&y_p, src_p, dst_p);
        for (i, &p) in perm.iter().enumerate() {
            assert!(
                (base.get(p, 0) - permuted.get(i, 0)).abs() < 1e-4,
                "edge {i} logit not equivariant"
            );
        }
    }

    #[test]
    fn fused_forward_matches_unfused_bitwise() {
        // The fused GatherConcat/planned-scatter path must reproduce the
        // unfused reference exactly — same logits, same gradients, to the
        // last bit — or the golden training curves would drift.
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = InteractionGnn::new(tiny_config(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let targets = [1.0f32, 0.0, 1.0, 0.0, 1.0];

        let mut run = |fused: bool| -> (Matrix, Vec<Matrix>) {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let (src, dst) = (Arc::new(src.clone()), Arc::new(dst.clone()));
            let logits = if fused {
                model.forward(&mut tape, &mut bind, &x, &y, src, dst)
            } else {
                model.forward_unfused(&mut tape, &mut bind, &x, &y, src, dst)
            };
            let loss = trkx_nn::bce_with_logits(&mut tape, logits, &targets, 1.0);
            tape.backward(loss);
            let out = tape.value(logits).clone();
            let mut params = model.params_mut();
            for p in params.iter_mut() {
                p.zero_grad();
            }
            bind.harvest(&tape, &mut params);
            let grads = model.params().iter().map(|p| p.grad.clone()).collect();
            (out, grads)
        };

        let (logits_f, grads_f) = run(true);
        let (logits_u, grads_u) = run(false);
        assert_eq!(logits_f.data(), logits_u.data(), "fused logits differ");
        for (gf, gu) in grads_f.iter().zip(&grads_u) {
            assert_eq!(gf.data(), gu.data(), "fused gradients differ");
        }
    }

    #[test]
    fn fused_tape_drops_gather_intermediates() {
        // Per layer the fused path retains 4h·m fewer floats (the two
        // m×2h endpoint gathers never materialize).
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = tiny_config();
        let model = InteractionGnn::new(cfg.clone(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let measure = |fused: bool| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let (src, dst) = (Arc::new(src.clone()), Arc::new(dst.clone()));
            let _ = if fused {
                model.forward(&mut tape, &mut bind, &x, &y, src, dst)
            } else {
                model.forward_unfused(&mut tape, &mut bind, &x, &y, src, dst)
            };
            tape.activation_floats()
        };
        let fused = measure(true);
        let unfused = measure(false);
        let m = y.rows();
        let saved_per_layer = 4 * cfg.hidden * m;
        assert_eq!(unfused - fused, cfg.gnn_layers * saved_per_layer);
    }

    #[test]
    fn activation_estimate_tracks_measurement() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = tiny_config();
        let model = InteractionGnn::new(cfg.clone(), &mut rng);
        let (x, y, src, dst) = tiny_graph();
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let _ = model.forward(&mut tape, &mut bind, &x, &y, Arc::new(src), Arc::new(dst));
        let measured = tape.activation_floats();
        let estimated = cfg.estimate_activation_floats(4, 5);
        let ratio = estimated as f64 / measured as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "estimate {estimated} vs measured {measured}"
        );
    }

    #[test]
    fn gradcheck_tiny_ignn() {
        // Finite-difference check of a handful of parameter elements of a
        // minimal IGNN against the full pipeline loss.
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = IgnnConfig::new(2, 1)
            .with_hidden(4)
            .with_gnn_layers(1)
            .with_mlp_depth(2);
        let mut model = InteractionGnn::new(cfg, &mut rng);
        let x = Matrix::randn(3, 2, 0.5, &mut rng);
        let y = Matrix::randn(3, 1, 0.5, &mut rng);
        let src = vec![0u32, 1, 2];
        let dst = vec![1u32, 2, 0];
        let targets = [1.0f32, 0.0, 1.0];

        let loss_value = |model: &InteractionGnn| {
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let logits = model.forward(
                &mut tape,
                &mut bind,
                &x,
                &y,
                Arc::new(src.clone()),
                Arc::new(dst.clone()),
            );
            let loss = trkx_nn::bce_with_logits(&mut tape, logits, &targets, 1.0);
            tape.value(loss).as_scalar()
        };

        // Analytic.
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let logits = model.forward(
            &mut tape,
            &mut bind,
            &x,
            &y,
            Arc::new(src.clone()),
            Arc::new(dst.clone()),
        );
        let loss = trkx_nn::bce_with_logits(&mut tape, logits, &targets, 1.0);
        tape.backward(loss);
        {
            let mut params = model.params_mut();
            bind.harvest(&tape, &mut params);
        }
        let grads: Vec<Matrix> = model.params().iter().map(|p| p.grad.clone()).collect();

        let eps = 1e-2f32;
        for (pi, g) in grads.iter().enumerate() {
            // Check the first element of every tensor.
            let orig = model.params()[pi].value.data()[0];
            model.params_mut()[pi].value.data_mut()[0] = orig + eps;
            let plus = loss_value(&model);
            model.params_mut()[pi].value.data_mut()[0] = orig - eps;
            let minus = loss_value(&model);
            model.params_mut()[pi].value.data_mut()[0] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let exact = g.data()[0];
            assert!(
                (numeric - exact).abs() < 2e-2 + 0.1 * exact.abs(),
                "param {pi}: numeric {numeric} vs analytic {exact}"
            );
        }
    }
}
