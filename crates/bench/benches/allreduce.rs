//! Criterion microbenchmark behind Figure 3's communication component:
//! wall-clock cost of the real shared-memory all-reduce (per-tensor vs
//! coalesced) across worker counts, using the actual IGNN parameter
//! census. The virtual-clock α–β model is benchmarked implicitly by the
//! fig3 harness; this measures the mechanical reduction work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trkx_ddp::{run_workers, AllReduceStrategy, AllReducer, CommCostModel};
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::Param;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    let icfg = IgnnConfig::new(6, 2)
        .with_hidden(64)
        .with_gnn_layers(8)
        .with_mlp_depth(2);
    let mut rng = StdRng::seed_from_u64(0);
    let template = InteractionGnn::new(icfg, &mut rng);
    let shapes: Vec<(usize, usize)> = template
        .params()
        .iter()
        .map(|p| (p.value.rows(), p.value.cols()))
        .collect();

    for p in [2usize, 4] {
        for (label, strategy) in [
            ("per_tensor", AllReduceStrategy::PerTensor),
            ("coalesced", AllReduceStrategy::Coalesced),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("p{p}")),
                &shapes,
                |b, shapes| {
                    b.iter(|| {
                        let reducer = AllReducer::new(p, CommCostModel::nvlink3());
                        run_workers(p, |rank| {
                            let mut params: Vec<Param> = shapes
                                .iter()
                                .enumerate()
                                .map(|(i, &(r, c))| {
                                    let mut prm = Param::new(
                                        format!("t{i}"),
                                        trkx_tensor::Matrix::zeros(r, c),
                                    );
                                    prm.grad = trkx_tensor::Matrix::full(r, c, rank as f32);
                                    prm
                                })
                                .collect();
                            let mut refs: Vec<&mut Param> = params.iter_mut().collect();
                            reducer.sync_gradients(rank, &mut refs, strategy);
                        });
                        std::hint::black_box(reducer.num_calls());
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
