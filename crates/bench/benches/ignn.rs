//! Criterion microbenchmark behind Figure 3's *training time* bars and
//! Figure 4's per-epoch cost: one IGNN forward+backward+update step as a
//! function of subgraph size, plus full-graph versus sampled-subgraph
//! step cost (the memory/time asymmetry motivating minibatching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use trkx_core::{prepare_graphs, PreparedGraph};
use trkx_detector::DatasetConfig;
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::{bce_with_logits, Adam, Bindings, Optimizer};
use trkx_sampling::{BulkShadowSampler, ShadowConfig};
use trkx_tensor::Tape;

fn step(model: &mut InteractionGnn, opt: &mut Adam, g: &PreparedGraph) -> f32 {
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    let logits = model.forward_planned(&mut tape, &mut bind, &g.x, &g.y, &g.plans);
    let loss = bce_with_logits(&mut tape, logits, &g.labels, 1.0);
    let v = tape.value(loss).as_scalar();
    tape.backward(loss);
    let mut params = model.params_mut();
    bind.harvest(&tape, &mut params);
    opt.step(&mut params);
    for p in params {
        p.zero_grad();
    }
    v
}

fn bench_ignn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ignn_train_step");
    group.sample_size(10);

    // Full-graph step cost at growing event sizes.
    for scale in [0.01f64, 0.03] {
        let cfg = DatasetConfig::ex3_like(scale);
        let prepared = prepare_graphs(&cfg.generate(1, 5));
        let g = &prepared[0];
        let icfg = IgnnConfig::new(6, 2).with_hidden(32).with_gnn_layers(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = InteractionGnn::new(icfg, &mut rng);
        let mut opt = Adam::new(1e-3);
        group.bench_with_input(
            BenchmarkId::new("full_graph", format!("{} edges", g.num_edges())),
            g,
            |b, g| b.iter(|| std::hint::black_box(step(&mut model, &mut opt, g))),
        );
    }

    // Sampled-subgraph step at the paper's batch size.
    {
        let cfg = DatasetConfig::ex3_like(0.03);
        let prepared = prepare_graphs(&cfg.generate(1, 5));
        let g = &prepared[0];
        let batch: Vec<u32> = (0..256.min(g.num_nodes as u32)).collect();
        let sub = BulkShadowSampler::new(ShadowConfig {
            depth: 3,
            fanout: 6,
        })
        .sample_batches(&g.sampler, &[batch], 3)
        .remove(0);
        let (x, y, labels) = g.subgraph_matrices(&sub);
        let sub_prepared = PreparedGraph::new(
            sub.num_nodes(),
            x,
            y,
            Arc::new(sub.sub_src.clone()),
            Arc::new(sub.sub_dst.clone()),
            labels,
            g.sampler.clone(),
        );
        let icfg = IgnnConfig::new(6, 2).with_hidden(32).with_gnn_layers(4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = InteractionGnn::new(icfg, &mut rng);
        let mut opt = Adam::new(1e-3);
        group.bench_with_input(
            BenchmarkId::new(
                "shadow_batch256",
                format!("{} edges", sub_prepared.num_edges()),
            ),
            &sub_prepared,
            |b, g| b.iter(|| std::hint::black_box(step(&mut model, &mut opt, g))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ignn);
criterion_main!(benches);
