//! Criterion microbenchmarks for the fused message-passing kernels:
//! serial vs plan-driven scatter-add, unfused vs fused edge-input
//! assembly, and one IGNN forward+backward through each path. The `mp`
//! binary (`src/bin/mp.rs`) measures the same kernels with allocation
//! accounting and thread-count sweeps; this harness gives statistically
//! sound single-configuration timings.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::{bce_with_logits, Bindings};
use trkx_tensor::{EdgePlans, Matrix, Tape};

const NODES: usize = 1024;
const EDGES: usize = 4096;
const HIDDEN: usize = 64;

struct Fixture {
    x: Matrix,
    y: Matrix,
    src: Arc<Vec<u32>>,
    dst: Arc<Vec<u32>>,
    labels: Vec<f32>,
    plans: Arc<EdgePlans>,
    edge_feat: Matrix,
    node_feat: Matrix,
    edge_state: Matrix,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(7);
    let src: Arc<Vec<u32>> = Arc::new((0..EDGES).map(|_| rng.gen_range(0..NODES as u32)).collect());
    let dst: Arc<Vec<u32>> = Arc::new((0..EDGES).map(|_| rng.gen_range(0..NODES as u32)).collect());
    let plans = Arc::new(EdgePlans::new(src.clone(), dst.clone(), NODES));
    Fixture {
        x: Matrix::randn(NODES, 3, 1.0, &mut rng),
        y: Matrix::randn(EDGES, 2, 1.0, &mut rng),
        src,
        dst,
        labels: (0..EDGES).map(|_| f32::from(rng.gen_bool(0.3))).collect(),
        plans,
        edge_feat: Matrix::randn(EDGES, HIDDEN, 1.0, &mut rng),
        node_feat: Matrix::randn(NODES, 2 * HIDDEN, 1.0, &mut rng),
        edge_state: Matrix::randn(EDGES, 2 * HIDDEN, 1.0, &mut rng),
    }
}

fn bench_scatter(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("mp_scatter_add");
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(f.edge_feat.scatter_add_rows(&f.src, NODES)))
    });
    group.bench_function("planned", |b| {
        b.iter(|| {
            let mut out = Matrix::zeros(NODES, HIDDEN);
            f.edge_feat
                .scatter_rows_planned_acc(&f.plans.src_plan, &mut out);
            std::hint::black_box(out)
        })
    });
    group.finish();
}

fn bench_msg_assembly(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("mp_msg_assembly");
    group.bench_function("unfused", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.constant_copied(&f.node_feat);
            let yv = t.constant_copied(&f.edge_state);
            let xs = t.gather(xv, f.src.clone());
            let xd = t.gather(xv, f.dst.clone());
            std::hint::black_box(t.concat_cols(&[yv, xs, xd]))
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.constant_copied(&f.node_feat);
            let yv = t.constant_copied(&f.edge_state);
            std::hint::black_box(t.gather_concat(yv, xv, f.plans.clone()))
        })
    });
    group.finish();
}

fn bench_model_step(c: &mut Criterion) {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = IgnnConfig::new(f.x.cols(), f.y.cols())
        .with_hidden(32)
        .with_gnn_layers(4)
        .with_mlp_depth(2);
    let model = InteractionGnn::new(cfg, &mut rng);
    let mut tape = Tape::new();
    let mut group = c.benchmark_group("mp_forward_backward");
    group.sample_size(10);
    group.bench_function("unfused", |b| {
        b.iter(|| {
            tape.reset();
            let mut bind = Bindings::new();
            let logits = model.forward_unfused(
                &mut tape,
                &mut bind,
                &f.x,
                &f.y,
                f.src.clone(),
                f.dst.clone(),
            );
            let loss = bce_with_logits(&mut tape, logits, &f.labels, 1.0);
            tape.backward(loss);
            std::hint::black_box(tape.value(loss).as_scalar())
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            tape.reset();
            let mut bind = Bindings::new();
            let logits = model.forward_planned(&mut tape, &mut bind, &f.x, &f.y, &f.plans);
            let loss = bce_with_logits(&mut tape, logits, &f.labels, 1.0);
            tape.backward(loss);
            std::hint::black_box(tape.value(loss).as_scalar())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scatter, bench_msg_assembly, bench_model_step);
criterion_main!(benches);
