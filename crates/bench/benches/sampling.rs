//! Criterion microbenchmark behind Figure 3's *sampling time* bars:
//! per-minibatch cost of the sequential ShaDow baseline versus
//! matrix-based bulk sampling at several bulk factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trkx_detector::DatasetConfig;
use trkx_sampling::{vertex_batches, BulkShadowSampler, SamplerGraph, ShadowConfig, ShadowSampler};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_sampling");
    group.sample_size(10);
    for (name, scale) in [("ex3", 0.05f64), ("ctd", 0.002f64)] {
        let cfg = if name == "ex3" {
            DatasetConfig::ex3_like(scale)
        } else {
            DatasetConfig::ctd_like(scale)
        };
        let g = &cfg.generate(1, 11)[0];
        let graph = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = vertex_batches(g.num_nodes, 256, &mut rng);
        let shadow = ShadowConfig {
            depth: 3,
            fanout: 6,
        };

        group.bench_with_input(
            BenchmarkId::new("baseline", name),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    for batch in batches {
                        std::hint::black_box(
                            ShadowSampler::new(shadow).sample_batch(&graph, batch, &mut rng),
                        );
                    }
                })
            },
        );
        for k in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("bulk_k{k}"), name),
                &batches,
                |b, batches| {
                    b.iter(|| {
                        for chunk in batches.chunks(k) {
                            std::hint::black_box(
                                BulkShadowSampler::new(shadow).sample_batches(&graph, chunk, 3),
                            );
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
