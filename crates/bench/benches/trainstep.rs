//! Criterion microbenchmarks for the autograd hot path: one full IGNN
//! train step (forward + backward + Adam update) on a synthetic graph,
//! plus the individual matmul/transpose kernels it spends its time in.
//!
//! Companion to `src/bin/trainstep.rs`, which emits machine-readable
//! `BENCH_trainstep.json` including an allocations-per-step count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use trkx_bench::trainstep::{run_step, StepScratch, SyntheticGraph};
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_tensor::Matrix;

fn bench_trainstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("trainstep");
    group.sample_size(10);

    for &(nodes, edges) in &[(256usize, 1024usize), (1024, 4096)] {
        let g = SyntheticGraph::generate(nodes, edges, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = IgnnConfig::new(g.x.cols(), g.y.cols())
            .with_hidden(32)
            .with_gnn_layers(4)
            .with_mlp_depth(2);
        let mut model = InteractionGnn::new(cfg, &mut rng);
        let mut scratch = StepScratch::new(1e-3);
        group.bench_with_input(
            BenchmarkId::new("ignn_step", format!("{nodes}n_{edges}e")),
            &g,
            |b, g| {
                b.iter(|| black_box(run_step(&mut model, g, &mut scratch)));
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    let mut rng = StdRng::seed_from_u64(3);
    // Shapes matching the IGNN hot path: (edges x 6h) * (6h x h) etc.
    for &(m, k, n) in &[(4096usize, 192usize, 32usize), (1024, 128, 128)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        group.bench_function(BenchmarkId::new("matmul", format!("{m}x{k}x{n}")), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_function(
            BenchmarkId::new("matmul_nt", format!("{m}x{k}x{n}")),
            |bch| {
                bch.iter(|| black_box(a.matmul_nt(&bt)));
            },
        );
        group.bench_function(
            BenchmarkId::new("matmul_tn", format!("{m}x{k}x{n}")),
            |bch| {
                bch.iter(|| black_box(at.matmul_tn(&b)));
            },
        );
    }

    let big = Matrix::randn(2048, 384, 1.0, &mut rng);
    group.bench_function("transpose_2048x384", |bch| {
        bch.iter(|| black_box(big.transpose()));
    });

    let idx: Arc<Vec<u32>> = Arc::new((0..8192u32).map(|i| (i * 37) % 2048).collect());
    group.bench_function("gather_8192_from_2048x64", |bch| {
        let src = Matrix::randn(2048, 64, 1.0, &mut rng);
        bch.iter(|| black_box(src.gather_rows(&idx)));
    });
    group.finish();
}

criterion_group!(benches, bench_trainstep, bench_kernels);
criterion_main!(benches);
