//! Criterion microbenchmarks for the substrate kernels the sampling and
//! training paths are built from: SpGEMM, induced-subgraph extraction,
//! dense matmul, and gather/scatter (the message-passing primitives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use trkx_sparse::{adjacency_with_edge_ids, extract_induced_direct, InducedExtractor};
use trkx_tensor::Matrix;

fn random_graph(n: usize, avg_degree: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = n * avg_degree;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < m {
        let s = rng.gen_range(0..n as u32);
        let d = rng.gen_range(0..n as u32);
        if s != d {
            set.insert((s, d));
        }
    }
    set.into_iter().unzip()
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let (src, dst) = random_graph(n, 8, 1);
        let a = adjacency_with_edge_ids(n, &src, &dst).map_vals(|v| (v + 1) as f32);
        group.bench_with_input(BenchmarkId::new("a_times_a", n), &a, |b, a| {
            b.iter(|| std::hint::black_box(a.spgemm(a)))
        });
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("induced_extraction");
    group.sample_size(20);
    let n = 5000;
    let (src, dst) = random_graph(n, 10, 2);
    let a = adjacency_with_edge_ids(n, &src, &dst);
    let mut rng = StdRng::seed_from_u64(3);
    let selections: Vec<Vec<u32>> = (0..64)
        .map(|_| {
            let mut s: Vec<u32> = (0..200).map(|_| rng.gen_range(0..n as u32)).collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    group.bench_function("hashmap_per_call", |b| {
        b.iter(|| {
            for sel in &selections {
                std::hint::black_box(extract_induced_direct(&a, sel));
            }
        })
    });
    group.bench_function("generation_stamped", |b| {
        let mut ex = InducedExtractor::new(n);
        let mut edges = Vec::new();
        b.iter(|| {
            for sel in &selections {
                edges.clear();
                std::hint::black_box(ex.extract_into(&a, sel, &mut edges));
            }
        })
    });
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let a = Matrix::randn(4096, 192, 1.0, &mut rng);
    let w = Matrix::randn(192, 64, 1.0, &mut rng);
    group.bench_function("matmul_4096x192x64", |b| {
        b.iter(|| std::hint::black_box(a.matmul(&w)))
    });
    let idx: Vec<u32> = (0..8192).map(|_| rng.gen_range(0..4096u32)).collect();
    group.bench_function("gather_8192_rows", |b| {
        b.iter(|| std::hint::black_box(a.gather_rows(&idx)))
    });
    let msgs = Matrix::randn(8192, 64, 1.0, &mut rng);
    group.bench_function("scatter_add_8192_rows", |b| {
        b.iter(|| std::hint::black_box(msgs.scatter_add_rows(&idx, 4096)))
    });
    group.finish();
}

criterion_group!(benches, bench_spgemm, bench_extraction, bench_dense);
criterion_main!(benches);
