//! # trkx-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index):
//!
//! | Target | Paper artifact | Binary |
//! |--------|----------------|--------|
//! | Table I | dataset statistics | `cargo run -p trkx-bench --bin table1 --release` |
//! | Figure 3 | epoch time vs process count | `cargo run -p trkx-bench --bin fig3_epoch_time --release` |
//! | Figure 4 | convergence curves | `cargo run -p trkx-bench --bin fig4_convergence --release` |
//! | ablations | design-choice sweeps | `cargo run -p trkx-bench --bin ablations --release` |
//!
//! Criterion microbenchmarks live under `benches/`. Experiment scales are
//! configurable; the defaults recorded in EXPERIMENTS.md run on a laptop.

use std::io::Write;

/// Markdown table writer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "{}", self.render());
    }
}

pub mod trainstep;

/// Parse `--key value` style CLI overrides (harnesses keep flags minimal).
pub fn arg_value<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Presence of a bare `--flag` switch.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Append a JSON result line to `results/<name>.jsonl` (machine-readable
/// record backing EXPERIMENTS.md).
pub fn append_jsonl(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("{name}.jsonl")))
        {
            let _ = writeln!(f, "{value}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let r = t.render();
        assert!(r.contains("| name  | value |"));
        assert!(r.contains("| alpha | 1     |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn arg_value_parses_and_defaults() {
        let args: Vec<String> = ["--scale", "0.25", "--epochs", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale", 1.0f64), 0.25);
        assert_eq!(arg_value(&args, "--epochs", 1usize), 7);
        assert_eq!(arg_value(&args, "--missing", 42i32), 42);
        assert_eq!(arg_value::<usize>(&args, "--scale", 3), 3); // parse failure -> default
    }
}
