//! Shared harness for the train-step microbenchmarks (`benches/trainstep.rs`
//! and `src/bin/trainstep.rs`): a deterministic synthetic event graph and
//! one full forward + backward + Adam step of the Interaction GNN on it.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use trkx_core::train::Engine;
use trkx_ignn::InteractionGnn;
use trkx_nn::{bce_with_logits, Adam};
use trkx_tensor::{EdgePlans, Matrix};

/// A random graph with the shape of a prepared event: node/edge features,
/// COO endpoints, binary edge labels, and the cached edge plans (built
/// once, like the data layer does for real batches — plan construction is
/// not part of the per-step cost being measured).
pub struct SyntheticGraph {
    pub x: Matrix,
    pub y: Matrix,
    pub src: Arc<Vec<u32>>,
    pub dst: Arc<Vec<u32>>,
    pub labels: Vec<f32>,
    pub plans: Arc<EdgePlans>,
}

impl SyntheticGraph {
    /// Deterministic graph with `nodes` vertices and `edges` edges.
    pub fn generate(nodes: usize, edges: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::randn(nodes, 3, 1.0, &mut rng);
        let y = Matrix::randn(edges, 2, 1.0, &mut rng);
        let src: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
        let dst: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
        let labels: Vec<f32> = (0..edges).map(|_| f32::from(rng.gen_bool(0.3))).collect();
        let src = Arc::new(src);
        let dst = Arc::new(dst);
        let plans = Arc::new(EdgePlans::new(src.clone(), dst.clone(), nodes));
        Self {
            x,
            y,
            src,
            dst,
            labels,
            plans,
        }
    }
}

/// Reusable per-step state: the training-harness [`Engine`] owning the
/// pooled tape/bindings pair and the Adam optimizer, kept across steps so
/// the tape's buffer pool can recycle activation and gradient buffers.
pub struct StepScratch {
    pub engine: Engine,
}

impl StepScratch {
    pub fn new(learning_rate: f32) -> Self {
        Self {
            engine: Engine::new(Adam::new(learning_rate)),
        }
    }
}

/// One full training step through the engine; returns the loss.
pub fn run_step(model: &mut InteractionGnn, g: &SyntheticGraph, scratch: &mut StepScratch) -> f32 {
    let m = &*model;
    let v = scratch.engine.forward_backward(|tape, bind| {
        let logits = m.forward_planned(tape, bind, &g.x, &g.y, &g.plans);
        Some(bce_with_logits(tape, logits, &g.labels, 1.0))
    });
    scratch.engine.update(&mut model.params_mut());
    v
}
