//! Regenerates **Figure 3** — epoch time versus simulated GPU count for
//! the PyG-style pipeline (sequential ShaDow + per-tensor all-reduce)
//! and ours (matrix-based bulk ShaDow + coalesced all-reduce), broken
//! into sampling time and training time, on CTD-like and Ex3-like data.
//!
//! ```text
//! cargo run -p trkx-bench --bin fig3_epoch_time --release \
//!   [-- --ctd-scale 0.004 --ex3-scale 0.05 --graphs 4 --epochs 1 \
//!       --overlap --comm-overlap --tiny]
//! ```
//!
//! `--overlap` additionally accounts each epoch under the overlapped
//! (prefetching-loader) virtual clock — `max(sampling, train) + comm`
//! instead of their sum — and **asserts** the overlapped schedule never
//! costs more than the serial one (strictly less whenever both stages do
//! real work), exiting non-zero on violation. `--comm-overlap` fires
//! each gradient bucket's all-reduce during backward instead of as one
//! post-backward sync and **asserts** that for every multi-worker run
//! the exposed communication is strictly below the serial account and
//! the overlapped epoch never exceeds the serial epoch, exiting
//! non-zero on violation. `--tiny` shrinks the workload to a
//! seconds-long smoke run (the CI gate).
//!
//! As in the paper, the bulk factor `k` grows with the process count
//! (more aggregate memory ⇒ more minibatches sampled per bulk call).
//! Per-rank compute is measured with the single-thread DDP simulator
//! (`train_minibatch_simulated`) so that worker timings are exact even on
//! machines with fewer cores than simulated GPUs; communication comes
//! from the NVLink-3 α–β ring model. Paper shapes to reproduce: ours is
//! ~1.3–2x faster per epoch than PyG-style across P; training time
//! scales with P; bulk sampling scales superlinearly with P because k
//! grows with P.

use trkx_bench::{append_jsonl, arg_flag, arg_value, Table};
use trkx_core::{prepare_graphs, train_minibatch_simulated_opts, GnnTrainConfig, SamplerKind};
use trkx_ddp::{AllReduceStrategy, DdpConfig};
use trkx_detector::{DatasetConfig, EventGraph};
use trkx_sampling::ShadowConfig;

struct Arm {
    name: &'static str,
    sampler_is_bulk: bool,
    strategy: AllReduceStrategy,
}

#[allow(clippy::too_many_arguments)]
fn run_dataset(
    dataset: &DatasetConfig,
    graphs: &[EventGraph],
    process_counts: &[usize],
    epochs: usize,
    hidden: usize,
    layers: usize,
    overlap: bool,
    comm_overlap: bool,
    violations: &mut usize,
) {
    let prepared = prepare_graphs(graphs);
    let n_train = (graphs.len() * 4 / 5).max(1);
    let (train, val) = prepared.split_at(n_train);
    println!(
        "\n## {}: {} train graphs, avg {:.0} vertices / {:.0} edges\n",
        dataset.name,
        train.len(),
        train.iter().map(|g| g.num_nodes as f64).sum::<f64>() / train.len() as f64,
        train.iter().map(|g| g.num_edges() as f64).sum::<f64>() / train.len() as f64,
    );

    let arms = [
        Arm {
            name: "PyG-style",
            sampler_is_bulk: false,
            strategy: AllReduceStrategy::PerTensor,
        },
        Arm {
            name: "ours",
            sampler_is_bulk: true,
            strategy: AllReduceStrategy::Coalesced,
        },
    ];

    let mut headers = vec![
        "P",
        "impl",
        "k",
        "sample(s)",
        "train(s)",
        "comm(s)",
        "epoch(s)",
    ];
    if overlap {
        headers.push("overlap(s)");
        headers.push("hidden");
    }
    if comm_overlap {
        headers.push("exposed(s)");
    }
    headers.extend(["sample speedup", "comm speedup", "total speedup"]);
    let mut table = Table::new(&headers);
    for &p in process_counts {
        let mut baseline: Option<(f64, f64, f64)> = None;
        for arm in &arms {
            let k = if arm.sampler_is_bulk { 2 * p } else { 1 };
            let cfg = GnnTrainConfig {
                hidden,
                gnn_layers: layers,
                mlp_depth: dataset.mlp_layers,
                epochs,
                batch_size: 256,
                learning_rate: 2e-3,
                shadow: ShadowConfig {
                    depth: 3,
                    fanout: 6,
                },
                seed: 5,
                ..Default::default()
            };
            let sampler = if arm.sampler_is_bulk {
                SamplerKind::Bulk { k }
            } else {
                SamplerKind::Baseline
            };
            let r = train_minibatch_simulated_opts(
                &cfg,
                sampler,
                overlap,
                DdpConfig {
                    workers: p,
                    strategy: arm.strategy,
                    cost_model: trkx_ddp::CommCostModel::nvlink3(),
                    comm_overlap,
                },
                train,
                val,
                Vec::new(),
            );
            // Average over measured epochs.
            let n = r.epochs.len() as f64;
            let sample_s = r.epochs.iter().map(|e| e.timing.sampling_s).sum::<f64>() / n;
            let train_s = r.epochs.iter().map(|e| e.timing.train_s).sum::<f64>() / n;
            let comm_s = r
                .epochs
                .iter()
                .map(|e| e.timing.comm_virtual_s)
                .sum::<f64>()
                / n;
            // Serial schedule: sampling then compute, back to back.
            let total = sample_s + train_s + comm_s;
            // Overlapped schedule (the virtual clock's accounting when the
            // loader prefetches): sampling hides behind compute.
            let overlapped = r.epochs.iter().map(|e| e.timing.total_s()).sum::<f64>() / n;
            let exposed_s = r
                .epochs
                .iter()
                .map(|e| e.timing.comm_exposed_s)
                .sum::<f64>()
                / n;
            if comm_overlap && p >= 2 {
                // Firing each bucket's collective during backward must hide
                // real communication behind compute: exposed strictly below
                // the serial account, and the epoch under the overlapped
                // clock never slower than under the serial one.
                if exposed_s >= comm_s {
                    println!(
                        "VIOLATION: {} P={} exposed comm {exposed_s:.4}s >= serial {comm_s:.4}s",
                        arm.name, p
                    );
                    *violations += 1;
                }
                if sample_s + train_s + exposed_s > total {
                    println!(
                        "VIOLATION: {} P={} overlapped-comm epoch {:.3}s > serial {total:.3}s",
                        arm.name,
                        p,
                        sample_s + train_s + exposed_s
                    );
                    *violations += 1;
                }
            }
            if overlap {
                // Prefetching can only remove sampling stalls, never add
                // them; with both stages busy it must win outright.
                let ok = if sample_s > 0.0 && train_s > 0.0 {
                    overlapped < total
                } else {
                    overlapped <= total
                };
                if !ok {
                    println!(
                        "VIOLATION: {} P={} overlapped {overlapped:.3}s > serial {total:.3}s",
                        arm.name, p
                    );
                    *violations += 1;
                }
            }
            let (su_sample, su_comm, su_total) = match baseline {
                None => {
                    baseline = Some((sample_s, comm_s, total));
                    (
                        "1.00x".to_string(),
                        "1.00x".to_string(),
                        "1.00x".to_string(),
                    )
                }
                Some((bs, bc, bt)) => (
                    format!("{:.2}x", bs / sample_s.max(1e-12)),
                    if p == 1 {
                        "-".to_string()
                    } else {
                        format!("{:.1}x", bc / comm_s.max(1e-12))
                    },
                    format!("{:.2}x", bt / total),
                ),
            };
            let mut row = vec![
                p.to_string(),
                arm.name.into(),
                k.to_string(),
                format!("{sample_s:.3}"),
                format!("{train_s:.3}"),
                format!("{comm_s:.4}"),
                format!("{total:.3}"),
            ];
            if overlap {
                row.push(format!("{overlapped:.3}"));
                row.push(format!(
                    "{:.0}%",
                    100.0 * (total - overlapped) / total.max(1e-12)
                ));
            }
            if comm_overlap {
                row.push(format!("{exposed_s:.4}"));
            }
            row.extend([su_sample, su_comm, su_total]);
            table.row(row);
            append_jsonl(
                "fig3",
                &serde_json::json!({
                    "dataset": dataset.name,
                    "p": p,
                    "impl": arm.name,
                    "k": k,
                    "sample_s": sample_s,
                    "train_s": train_s,
                    "comm_s": comm_s,
                    "total_s": total,
                    "overlapped_s": overlapped,
                    "comm_overlap": comm_overlap,
                    "exposed_s": exposed_s,
                }),
            );
        }
    }
    table.print();
    println!(
        "Note: on CPU the IGNN arithmetic dominates the epoch and is identical\n\
         between implementations, so the end-to-end ratio compresses toward 1x;\n\
         the paper's gains live in the sampling and comm columns (on the A100\n\
         testbed sampling was ~50% of epoch time). See EXPERIMENTS.md."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = arg_flag(&args, "--tiny");
    let overlap = arg_flag(&args, "--overlap");
    let comm_overlap = arg_flag(&args, "--comm-overlap");
    let ctd_scale = arg_value(&args, "--ctd-scale", 0.002f64);
    let ex3_scale = arg_value(&args, "--ex3-scale", if tiny { 0.01 } else { 0.03 });
    let n_graphs = arg_value(&args, "--graphs", if tiny { 2usize } else { 3 });
    let epochs = arg_value(&args, "--epochs", 1usize);
    let hidden = arg_value(&args, "--hidden", if tiny { 8usize } else { 16 });
    let layers = arg_value(&args, "--layers", if tiny { 2usize } else { 3 });

    println!("# Figure 3: epoch time across simulated GPU counts");
    let mut violations = 0usize;
    // Paper: CTD measured at P in {1, 2, 4} (PyG timed out at 4); Ex3 at
    // P in {1, 2, 4, 8}. `--tiny` keeps only a small Ex3 sweep.
    if !tiny {
        let ctd = DatasetConfig::ctd_like(ctd_scale);
        run_dataset(
            &ctd,
            &ctd.generate(n_graphs, 99),
            &[1, 2, 4],
            epochs,
            hidden,
            layers,
            overlap,
            comm_overlap,
            &mut violations,
        );
    }
    let ex3 = DatasetConfig::ex3_like(ex3_scale);
    run_dataset(
        &ex3,
        &ex3.generate(n_graphs, 99),
        if tiny { &[1, 2][..] } else { &[1, 2, 4, 8][..] },
        epochs,
        hidden,
        layers,
        overlap,
        comm_overlap,
        &mut violations,
    );
    if overlap || comm_overlap {
        if violations > 0 {
            println!("\n{violations} overlap violation(s): overlapped schedule exceeded serial");
            std::process::exit(1);
        }
        println!("\nOverlap check passed: overlapped schedules never exceeded serial accounts.");
    }
}
