//! Stage-2 graph-construction benchmark with parity and allocation
//! gates.
//!
//! Sweeps event size × embedding dimension × index backend (grid FRNN,
//! rebuilt kd-tree, brute reference) and compares the pooled engine
//! against a faithful replica of the seed kd-tree path (sort-based
//! recursive build, allocating per-query result vectors, flat-map
//! collect + global parallel sort). The shim thread pool is sized once
//! per process, so thread scaling runs one child process per pool size
//! (the `mp` bench pattern) — which doubles as the cross-thread-count
//! determinism check: every backend must produce the same FNV-1a edge
//! hash at every thread count.
//!
//! Results go to `BENCH_construct.json`. Exit is non-zero when
//! - any backend/thread-count pair disagrees on an edge hash (parity),
//! - steady-state allocations per event exceed `--max-allocs`, or
//! - the grid engine's speedup over the seed path at the funnel-scale
//!   case falls below `--min-speedup` (default 3; `--tiny` skips this
//!   gate and shrinks the sweep for CI smoke runs).
//!
//! Usage: `construct [--ns 352,1408,5632] [--dims 3,8] [--threads 1,4]
//! [--reps 5] [--radius 0.25] [--max-allocs 8] [--min-speedup 3.0]
//! [--tiny] [--out PATH]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};
use trkx_bench::{arg_flag, arg_value};
use trkx_graph::{Backend, GraphIndex};

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Faithful replica of the pre-engine stage-2 path, kept as the
/// benchmark baseline: per-node-sorting tree build, recursive queries
/// that allocate a result `Vec` per point, and a globally sorted
/// flat-map edge collection.
mod seed_baseline {
    use rayon::prelude::*;

    fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    pub struct SeedKdTree {
        dim: usize,
        points: Vec<f32>,
        ids: Vec<u32>,
    }

    impl SeedKdTree {
        pub fn build(points: &[f32], dim: usize) -> Self {
            let n = points.len() / dim;
            let mut ids: Vec<u32> = (0..n as u32).collect();
            let mut pts = points.to_vec();
            if n > 0 {
                build_recursive(&mut pts, &mut ids, dim, 0, 0, n);
            }
            Self {
                dim,
                points: pts,
                ids,
            }
        }

        fn point(&self, slot: usize) -> &[f32] {
            &self.points[slot * self.dim..(slot + 1) * self.dim]
        }

        pub fn radius_query(&self, query: &[f32], r: f32) -> Vec<u32> {
            let mut out = Vec::new();
            if !self.ids.is_empty() {
                self.radius_rec(query, r * r, 0, 0, self.ids.len(), &mut out);
            }
            out
        }

        fn radius_rec(
            &self,
            q: &[f32],
            r2: f32,
            depth: usize,
            lo: usize,
            hi: usize,
            out: &mut Vec<u32>,
        ) {
            if lo >= hi {
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let p = self.point(mid);
            if sq_dist(p, q) <= r2 {
                out.push(self.ids[mid]);
            }
            let axis = depth % self.dim;
            let delta = q[axis] - p[axis];
            let (near, far) = if delta < 0.0 {
                ((lo, mid), (mid + 1, hi))
            } else {
                ((mid + 1, hi), (lo, mid))
            };
            self.radius_rec(q, r2, depth + 1, near.0, near.1, out);
            if delta * delta <= r2 {
                self.radius_rec(q, r2, depth + 1, far.0, far.1, out);
            }
        }
    }

    fn build_recursive(
        pts: &mut [f32],
        ids: &mut [u32],
        dim: usize,
        depth: usize,
        lo: usize,
        hi: usize,
    ) {
        if hi - lo <= 1 {
            return;
        }
        let axis = depth % dim;
        let mid = lo + (hi - lo) / 2;
        let mut order: Vec<usize> = (lo..hi).collect();
        order.sort_by(|&a, &b| {
            pts[a * dim + axis]
                .partial_cmp(&pts[b * dim + axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut new_pts = Vec::with_capacity((hi - lo) * dim);
        let mut new_ids = Vec::with_capacity(hi - lo);
        for &slot in &order {
            new_pts.extend_from_slice(&pts[slot * dim..(slot + 1) * dim]);
            new_ids.push(ids[slot]);
        }
        pts[lo * dim..hi * dim].copy_from_slice(&new_pts);
        ids[lo..hi].copy_from_slice(&new_ids);
        build_recursive(pts, ids, dim, depth + 1, lo, mid);
        build_recursive(pts, ids, dim, depth + 1, mid + 1, hi);
    }

    pub fn radius_graph_seed(points: &[f32], dim: usize, r: f32) -> Vec<(u32, u32)> {
        let n = points.len() / dim;
        let tree = SeedKdTree::build(points, dim);
        let mut edges: Vec<(u32, u32)> = (0..n)
            .into_par_iter()
            .flat_map_iter(|i| {
                let q = &points[i * dim..(i + 1) * dim];
                tree.radius_query(q, r)
                    .into_iter()
                    .filter(move |&j| (j as usize) > i)
                    .map(move |j| (i as u32, j))
                    .collect::<Vec<_>>()
                    .into_iter()
            })
            .collect();
        edges.par_sort_unstable();
        edges
    }
}

/// Synthetic embedding-space event: ~`n / 8` particle clusters, eight
/// hits each, jittered around a uniform cluster centre — same shape the
/// trained embedding produces (same-particle hits pulled together).
fn cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n * dim);
    let mut center = vec![0.0f32; dim];
    for i in 0..n {
        if i % 8 == 0 {
            for c in center.iter_mut() {
                *c = rng.gen_range(-1.0f32..1.0);
            }
        }
        for &c in &center {
            pts.push(c + rng.gen_range(-0.05f32..0.05));
        }
    }
    pts
}

/// FNV-1a over the edge list — the cross-backend / cross-thread-count
/// parity fingerprint.
fn edge_hash(edges: &[(u32, u32)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(a, b) in edges {
        for byte in a.to_le_bytes().into_iter().chain(b.to_le_bytes()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Grid => "grid",
        Backend::Kd => "kd",
        Backend::Brute => "brute",
    }
}

/// Measure one engine backend on one cloud: per-event time for the full
/// serving pattern (rebuild index + emit edges into a pooled buffer),
/// steady-state allocations per event, and the parity hash.
fn measure_engine(
    points: &[f32],
    dim: usize,
    r: f32,
    backend: Backend,
    reps: usize,
) -> (f64, u64, u64, usize) {
    let mut idx = GraphIndex::new(backend);
    let mut edges = Vec::new();
    let mut event = || {
        idx.rebuild(points, dim, r);
        idx.radius_edges_into(r, &mut edges);
    };
    // Warm twice: index/scratch buffers reach capacity, and every pool
    // thread populates its thread-local query scratch.
    event();
    event();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..4 {
        event();
    }
    let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) / 4;
    let ms = time_ms(reps, &mut event);
    (ms, allocs, edge_hash(&edges), edges.len())
}

fn measure_seed(points: &[f32], dim: usize, r: f32, reps: usize) -> (f64, u64, u64, usize) {
    let mut edges = seed_baseline::radius_graph_seed(points, dim, r);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..4 {
        edges = seed_baseline::radius_graph_seed(points, dim, r);
    }
    let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) / 4;
    let ms = time_ms(reps, || {
        std::hint::black_box(seed_baseline::radius_graph_seed(points, dim, r));
    });
    (ms, allocs, edge_hash(&edges), edges.len())
}

struct Sweep {
    ns: Vec<usize>,
    dims: Vec<usize>,
    radius: f32,
    reps: usize,
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// One measurement pass at the current process's pool size: every
/// (n, dim) case × {grid, kd, brute, seed-kd}.
fn child_pass(s: &Sweep) -> serde_json::Value {
    let mut cases = Vec::new();
    for &n in &s.ns {
        for &dim in &s.dims {
            let points = cloud(n, dim, 31 + n as u64 * 8 + dim as u64);
            for backend in [Backend::Grid, Backend::Kd, Backend::Brute] {
                let (ms, allocs, hash, edges) =
                    measure_engine(&points, dim, s.radius, backend, s.reps);
                cases.push(serde_json::json!({
                    "n": n,
                    "dim": dim,
                    "backend": backend_name(backend),
                    "event_ms": ms,
                    "edges": edges,
                    "edges_per_s": if ms > 0.0 { edges as f64 / (ms * 1e-3) } else { 0.0 },
                    "allocs_per_event": allocs,
                    "edge_hash": format!("{hash:016x}"),
                }));
            }
            let (ms, allocs, hash, edges) = measure_seed(&points, dim, s.radius, s.reps);
            cases.push(serde_json::json!({
                "n": n,
                "dim": dim,
                "backend": "seed-kd",
                "event_ms": ms,
                "edges": edges,
                "edges_per_s": if ms > 0.0 { edges as f64 / (ms * 1e-3) } else { 0.0 },
                "allocs_per_event": allocs,
                "edge_hash": format!("{hash:016x}"),
            }));
        }
    }
    serde_json::Value::Map(vec![
        (
            "threads".to_string(),
            serde_json::Value::U64(rayon::current_num_threads() as u64),
        ),
        ("cases".to_string(), serde_json::Value::Seq(cases)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = arg_flag(&args, "--tiny");
    let sweep = Sweep {
        ns: parse_list(&arg_value(
            &args,
            "--ns",
            if tiny { "352" } else { "352,1408,5632" }.to_string(),
        )),
        dims: parse_list(&arg_value(
            &args,
            "--dims",
            if tiny { "8" } else { "3,8" }.to_string(),
        )),
        radius: arg_value(&args, "--radius", 0.25f32),
        reps: arg_value(&args, "--reps", if tiny { 3 } else { 9 }),
    };
    assert!(
        !sweep.ns.is_empty() && !sweep.dims.is_empty(),
        "--ns / --dims parsed to an empty list"
    );

    if arg_flag(&args, "--child") {
        println!("{}", child_pass(&sweep).to_json_string());
        return;
    }

    let out: String = arg_value(&args, "--out", "BENCH_construct.json".to_string());
    let threads_arg: String = arg_value(&args, "--threads", "1,4".to_string());
    let max_allocs: u64 = arg_value(&args, "--max-allocs", 8u64);
    let min_speedup: f64 = arg_value(&args, "--min-speedup", if tiny { 0.0 } else { 3.0 });
    let thread_counts = parse_list(&threads_arg);
    assert!(
        !thread_counts.is_empty(),
        "--threads parsed to an empty list"
    );

    // One child process per pool size (the shim pool is sized once per
    // process); forward the sweep so every child measures the same
    // cases.
    let exe = std::env::current_exe().expect("current_exe");
    let ns_arg: String = sweep
        .ns
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let dims_arg: String = sweep
        .dims
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut runs = Vec::new();
    for &t in &thread_counts {
        let output = std::process::Command::new(&exe)
            .args([
                "--child",
                "--ns",
                &ns_arg,
                "--dims",
                &dims_arg,
                "--radius",
                &sweep.radius.to_string(),
                "--reps",
                &sweep.reps.to_string(),
            ])
            .env("RAYON_NUM_THREADS", t.to_string())
            .output()
            .expect("spawn child bench");
        assert!(
            output.status.success(),
            "child bench (threads={t}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let record = serde_json::parse_value(stdout.trim()).expect("parse child record");
        runs.push(record);
    }

    // Gate 1 — parity: for each (n, dim), every backend in every child
    // (thread count) must report the same edge hash.
    let case_field = |case: &serde_json::Value, key: &str| -> String {
        case.get(key)
            .and_then(|v| {
                v.as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_u64().map(|u| u.to_string()))
            })
            .unwrap_or_default()
    };
    let mut failures = Vec::new();
    let mut reference: std::collections::HashMap<String, (String, String)> =
        std::collections::HashMap::new();
    for run in &runs {
        let threads = run.get("threads").and_then(|v| v.as_u64()).unwrap_or(0);
        for case in run.get("cases").and_then(|c| c.as_seq()).unwrap_or(&[]) {
            let key = format!("{}x{}", case_field(case, "n"), case_field(case, "dim"));
            let hash = case_field(case, "edge_hash");
            let who = format!("{} @ {threads}t", case_field(case, "backend"));
            match reference.get(&key) {
                None => {
                    reference.insert(key, (hash, who));
                }
                Some((want, from)) if *want != hash => {
                    failures.push(format!(
                        "parity: case {key}: {who} hash {hash} != {from} hash {want}"
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // Gate 2 — pooled engine backends allocate (almost) nothing per
    // event once warm.
    for run in &runs {
        let threads = run.get("threads").and_then(|v| v.as_u64()).unwrap_or(0);
        for case in run.get("cases").and_then(|c| c.as_seq()).unwrap_or(&[]) {
            let backend = case_field(case, "backend");
            if backend == "seed-kd" {
                continue;
            }
            let allocs = case
                .get("allocs_per_event")
                .and_then(|v| v.as_u64())
                .unwrap_or(u64::MAX);
            if allocs > max_allocs {
                failures.push(format!(
                    "allocs: {backend} @ {threads}t n={} dim={}: {allocs} allocs/event > {max_allocs}",
                    case_field(case, "n"),
                    case_field(case, "dim"),
                ));
            }
        }
    }

    // Gate 3 — grid engine speedup over the seed path at the smallest
    // (funnel-scale) case. Below the engine's serial cutoff that case
    // runs the same code at every thread count, so each thread run is
    // one more sample of the same path: take the best across runs to
    // reject scheduler jitter.
    let mut speedup_at_funnel = 0.0f64;
    if let (Some(&n0), Some(&d0)) = (sweep.ns.first(), sweep.dims.last()) {
        for run in &runs {
            let find_ms = |backend: &str| -> Option<f64> {
                run.get("cases")?
                    .as_seq()?
                    .iter()
                    .find(|case| {
                        case_field(case, "backend") == backend
                            && case_field(case, "n") == n0.to_string()
                            && case_field(case, "dim") == d0.to_string()
                    })?
                    .get("event_ms")?
                    .as_f64()
            };
            if let (Some(seed_ms), Some(grid_ms)) = (find_ms("seed-kd"), find_ms("grid")) {
                if grid_ms > 0.0 {
                    speedup_at_funnel = speedup_at_funnel.max(seed_ms / grid_ms);
                }
            }
        }
        if min_speedup > 0.0 && speedup_at_funnel < min_speedup {
            failures.push(format!(
                "speedup: grid vs seed-kd at n={n0} dim={d0}: {speedup_at_funnel:.2}x < {min_speedup:.2}x"
            ));
        }
    }

    let report = serde_json::Value::Map(vec![
        (
            "radius".to_string(),
            serde_json::Value::F64(f64::from(sweep.radius)),
        ),
        (
            "speedup_at_funnel_scale_x".to_string(),
            serde_json::Value::F64(speedup_at_funnel),
        ),
        ("runs".to_string(), serde_json::Value::Seq(runs)),
    ]);
    std::fs::write(&out, report.to_json_string()).expect("write bench json");
    println!("wrote {out}");
    println!("grid speedup over seed kd path at funnel scale: {speedup_at_funnel:.2}x");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("all construct gates passed");
}
