//! Pipeline "funnel" harness (the system of the paper's Figure 1): runs
//! the five trained stages on validation events and reports how the
//! candidate-edge set and the truth signal evolve through each stage —
//! construction → filter → GNN → tracks.
//!
//! ```text
//! cargo run -p trkx-bench --bin pipeline_funnel --release [-- --particles 40 --events 8]
//! ```

use rand::{rngs::StdRng, SeedableRng};
use trkx_bench::{arg_value, Table};
use trkx_core::{
    build_tracks, infer_logits, prepare_graphs, roc_auc, train_pipeline, EmbeddingConfig,
    GnnTrainConfig, PipelineConfig, PreparedGraph, SamplerKind,
};
use trkx_detector::{simulate_event, DetectorGeometry, GunConfig};
use trkx_sampling::ShadowConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let particles = arg_value(&args, "--particles", 40usize);
    let n_events = arg_value(&args, "--events", 8usize);
    let epochs = arg_value(&args, "--epochs", 8usize);

    let geometry = DetectorGeometry::default();
    let gun = GunConfig::default();
    let mut rng = StdRng::seed_from_u64(31);
    let events: Vec<_> = (0..n_events + 2)
        .map(|_| simulate_event(&geometry, &gun, particles, 0.1, &mut rng))
        .collect();
    let (train, rest) = events.split_at(n_events);
    let (val, _) = rest.split_at(1);

    let config = PipelineConfig {
        embedding: EmbeddingConfig {
            epochs: 15,
            ..Default::default()
        },
        gnn: GnnTrainConfig {
            hidden: 32,
            gnn_layers: 4,
            epochs,
            batch_size: 128,
            shadow: ShadowConfig {
                depth: 2,
                fanout: 4,
            },
            ..Default::default()
        },
        gnn_sampler: SamplerKind::Bulk { k: 4 },
        ..Default::default()
    };
    println!(
        "# Pipeline funnel ({} train events, {} particles each)\n",
        n_events, particles
    );
    let (pipeline, report) = train_pipeline(config, train, val);

    // Walk a validation event through the funnel, reporting at each cut.
    let event = &val[0];
    let nf = pipeline.config.vertex_features;
    let ef = pipeline.config.edge_features;
    let feats = trkx_tensor::Matrix::from_vec(
        event.num_hits(),
        nf,
        trkx_detector::vertex_features(event, nf),
    );
    let emb = pipeline.embedding.embed(&feats);
    // Warm the pooled constructor once, then time a steady-state build
    // (the serving-relevant number: index + scratch buffers recycled).
    let mut ctor = pipeline.new_constructor();
    let method = trkx_core::ConstructionMethod::FixedRadius {
        radius: pipeline.radius,
    };
    ctor.construct(event, &emb, method);
    let t0 = std::time::Instant::now();
    let constructed = ctor.construct(event, &emb, method);
    let construct_s = t0.elapsed().as_secs_f64();
    let truth_total = event.truth_edges().len();

    let stage_ms = |s: f64| format!("{:.2}", s * 1e3);
    let edges_per_s = |edges: usize, s: f64| {
        if s > 0.0 {
            format!("{:.0}", edges as f64 / s)
        } else {
            "-".into()
        }
    };

    let mut table = Table::new(&[
        "stage",
        "edges",
        "true edges kept",
        "purity",
        "AUC",
        "ms",
        "edges/s",
    ]);
    let true_in: usize = constructed.labels.iter().filter(|&&l| l > 0.5).count();
    table.row(vec![
        "2. graph construction".into(),
        constructed.num_edges().to_string(),
        format!("{true_in}/{truth_total}"),
        format!("{:.3}", constructed.edge_purity),
        "-".into(),
        stage_ms(construct_s),
        edges_per_s(constructed.num_edges(), construct_s),
    ]);

    // Filter stage.
    let graph = {
        let y = trkx_detector::edge_features(event, &constructed.src, &constructed.dst, ef);
        trkx_detector::EventGraph {
            num_nodes: event.num_hits(),
            src: constructed.src.clone(),
            dst: constructed.dst.clone(),
            labels: constructed.labels.clone(),
            x: trkx_detector::vertex_features(event, nf),
            num_vertex_features: nf,
            y,
            num_edge_features: ef,
            event: event.clone(),
        }
    };
    let prepared = PreparedGraph::from_event_graph(&graph);
    let t0 = std::time::Instant::now();
    let filter_logits = pipeline.filter.logits(&prepared);
    let kept = pipeline.filter.kept_edges(&prepared);
    let filter_s = t0.elapsed().as_secs_f64();
    let kept_true = kept.iter().filter(|&&i| graph.labels[i] > 0.5).count();
    table.row(vec![
        "3. filter MLP".into(),
        kept.len().to_string(),
        format!("{kept_true}/{truth_total}"),
        format!("{:.3}", kept_true as f64 / kept.len().max(1) as f64),
        format!("{:.3}", roc_auc(&filter_logits, &graph.labels)),
        stage_ms(filter_s),
        edges_per_s(constructed.num_edges(), filter_s),
    ]);

    // GNN stage on the pruned graph.
    let pruned = {
        let src: Vec<u32> = kept.iter().map(|&i| graph.src[i]).collect();
        let dst: Vec<u32> = kept.iter().map(|&i| graph.dst[i]).collect();
        let labels: Vec<f32> = kept.iter().map(|&i| graph.labels[i]).collect();
        let y = trkx_detector::edge_features(event, &src, &dst, ef);
        trkx_detector::EventGraph {
            num_nodes: event.num_hits(),
            src,
            dst,
            labels,
            x: trkx_detector::vertex_features(event, nf),
            num_vertex_features: nf,
            y,
            num_edge_features: ef,
            event: event.clone(),
        }
    };
    let prepared_pruned = prepare_graphs(std::slice::from_ref(&pruned));
    let t0 = std::time::Instant::now();
    let gnn_logits = infer_logits(&pipeline.gnn, &prepared_pruned[0]);
    let gnn_s = t0.elapsed().as_secs_f64();
    let gnn_kept: Vec<usize> = gnn_logits
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0.0)
        .map(|(i, _)| i)
        .collect();
    let gnn_true = gnn_kept.iter().filter(|&&i| pruned.labels[i] > 0.5).count();
    table.row(vec![
        "4. IGNN".into(),
        gnn_kept.len().to_string(),
        format!("{gnn_true}/{truth_total}"),
        format!("{:.3}", gnn_true as f64 / gnn_kept.len().max(1) as f64),
        format!("{:.3}", roc_auc(&gnn_logits, &pruned.labels)),
        stage_ms(gnn_s),
        edges_per_s(pruned.src.len(), gnn_s),
    ]);

    let t0 = std::time::Instant::now();
    let tracks = build_tracks(&pruned, &gnn_logits, 0.5, 3);
    let tracks_s = t0.elapsed().as_secs_f64();
    table.row(vec![
        "5. tracks (CC)".into(),
        tracks.edges_kept.to_string(),
        format!(
            "eff {:.3} / pur {:.3}",
            tracks.metrics.efficiency(),
            tracks.metrics.purity()
        ),
        "-".into(),
        "-".into(),
        stage_ms(tracks_s),
        edges_per_s(tracks.edges_kept, tracks_s),
    ]);
    table.print();

    println!(
        "training summary: construction eff {:.3}, filter R {:.3}, GNN val P {:.3} R {:.3}",
        report.construction_efficiency,
        report.filter_recall,
        report.gnn_val_precision,
        report.gnn_val_recall
    );
}
