//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. all-reduce strategy: per-tensor vs coalesced latency across P and
//!    parameter-tensor count (the §III-D argument in isolation);
//! 2. bulk factor `k` sweep: sampling time per minibatch as more batches
//!    are stacked per call;
//! 3. induced-subgraph extraction: per-call hash-map extractor vs the
//!    amortised generation-stamped extractor vs SpGEMM selection;
//! 4. sampler family comparison (ShaDow vs node-wise vs layer-wise):
//!    sampled work per batch.
//!
//! ```text
//! cargo run -p trkx-bench --bin ablations --release
//! ```

use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use trkx_bench::Table;
use trkx_ddp::CommCostModel;
use trkx_detector::DatasetConfig;
use trkx_ignn::IgnnConfig;
use trkx_sampling::{
    vertex_batches, BulkShadowSampler, LayerWiseConfig, LayerWiseSampler, NodeWiseConfig,
    NodeWiseSampler, SamplerGraph, ShadowConfig, ShadowSampler,
};
use trkx_sparse::{extract_induced_direct, extract_induced_spgemm, InducedExtractor};

fn allreduce_ablation() {
    println!("## 1. All-reduce strategy (alpha-beta model, NVLink-3 constants)\n");
    let model = CommCostModel::nvlink3();
    // The paper's IGNN: hidden 64, 8 layers -> count the real tensors.
    let icfg = IgnnConfig::new(14, 8)
        .with_hidden(64)
        .with_gnn_layers(8)
        .with_mlp_depth(3);
    let mut rng = StdRng::seed_from_u64(0);
    let net = trkx_ignn::InteractionGnn::new(icfg, &mut rng);
    let sizes: Vec<usize> = net.params().iter().map(|p| p.numel() * 4).collect();
    println!(
        "IGNN: {} parameter tensors, {:.2} MiB total\n",
        sizes.len(),
        sizes.iter().sum::<usize>() as f64 / (1 << 20) as f64
    );
    let mut t = Table::new(&["P", "per-tensor (us)", "coalesced (us)", "ratio"]);
    for p in [2usize, 4, 8, 16] {
        let per = model.per_tensor_time(&sizes, p) * 1e6;
        let coal = model.coalesced_time(&sizes, p) * 1e6;
        t.row(vec![
            p.to_string(),
            format!("{per:.1}"),
            format!("{coal:.1}"),
            format!("{:.1}x", per / coal),
        ]);
    }
    t.print();
}

fn bucket_size_ablation() {
    println!("## 1b. Bucket-size sweep (PyTorch-DDP-style middle ground)\n");
    let model = CommCostModel::nvlink3();
    let icfg = IgnnConfig::new(14, 8)
        .with_hidden(64)
        .with_gnn_layers(8)
        .with_mlp_depth(3);
    let mut rng = StdRng::seed_from_u64(0);
    let net = trkx_ignn::InteractionGnn::new(icfg, &mut rng);
    let sizes: Vec<usize> = net.params().iter().map(|p| p.numel() * 4).collect();
    let p = 4;
    let mut t = Table::new(&["bucket", "time (us)", "vs per-tensor", "vs coalesced"]);
    let per = model.per_tensor_time(&sizes, p);
    let coal = model.coalesced_time(&sizes, p);
    for (label, bytes) in [
        ("1 B (= per-tensor)", 1usize),
        ("4 KiB", 4 << 10),
        ("64 KiB", 64 << 10),
        ("1 MiB", 1 << 20),
        ("25 MiB (PyTorch default)", 25 << 20),
    ] {
        let b = model.bucketed_time(&sizes, bytes, p);
        t.row(vec![
            label.into(),
            format!("{:.1}", b * 1e6),
            format!("{:.2}x", per / b),
            format!("{:.2}x", b / coal),
        ]);
    }
    t.print();
}

fn bulk_k_ablation() {
    println!("## 2. Bulk factor k sweep (sampling time per minibatch)\n");
    let g = &DatasetConfig::ex3_like(0.1).generate(1, 3)[0];
    let graph = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
    let mut rng = StdRng::seed_from_u64(1);
    let batches = vertex_batches(g.num_nodes, 256, &mut rng);
    let cfg = ShadowConfig {
        depth: 3,
        fanout: 6,
    };
    let mut t = Table::new(&["k", "calls", "time/minibatch (ms)"]);
    // Baseline: k = 1 via the sequential sampler.
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        for b in &batches {
            let _ = ShadowSampler::new(cfg).sample_batch(&graph, b, &mut rng);
        }
    }
    let per_batch = t0.elapsed().as_secs_f64() * 1e3 / (reps * batches.len()) as f64;
    t.row(vec![
        "1 (baseline)".into(),
        batches.len().to_string(),
        format!("{per_batch:.2}"),
    ]);
    for k in [1usize, 2, 4, 8] {
        let k = k.min(batches.len());
        let t0 = Instant::now();
        for _ in 0..reps {
            for chunk in batches.chunks(k) {
                let _ = BulkShadowSampler::new(cfg).sample_batches(&graph, chunk, 7);
            }
        }
        let per_batch = t0.elapsed().as_secs_f64() * 1e3 / (reps * batches.len()) as f64;
        t.row(vec![
            format!("{k} (bulk)"),
            batches.chunks(k).count().to_string(),
            format!("{per_batch:.2}"),
        ]);
    }
    t.print();
}

fn extraction_ablation() {
    println!("## 3. Induced-subgraph extraction paths\n");
    let g = &DatasetConfig::ex3_like(0.1).generate(1, 5)[0];
    let graph = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
    // Representative ShaDow-sized selections.
    let mut rng = StdRng::seed_from_u64(2);
    let selections: Vec<Vec<u32>> = (0..512)
        .map(|i| {
            let mut rng2 = StdRng::seed_from_u64(i);
            trkx_sampling::walk_touched_set(
                &graph,
                (i as u32 * 7) % g.num_nodes as u32,
                ShadowConfig {
                    depth: 3,
                    fanout: 6,
                },
                &mut rng2,
            )
        })
        .collect();
    let _ = &mut rng;
    let a_ids = trkx_sparse::adjacency_with_edge_ids(g.num_nodes, &g.src, &g.dst);
    let a_f = a_ids.map_vals(|id| (id + 1) as f32);

    let mut t = Table::new(&["extractor", "time for 512 subgraphs (ms)"]);
    let t0 = Instant::now();
    for sel in &selections {
        let _ = extract_induced_direct(&*graph.directed, sel);
    }
    t.row(vec![
        "hash-map per call (baseline)".into(),
        format!("{:.2}", t0.elapsed().as_secs_f64() * 1e3),
    ]);

    let t0 = Instant::now();
    let mut ex = InducedExtractor::new(g.num_nodes);
    let mut edges = Vec::new();
    for sel in &selections {
        edges.clear();
        let _ = ex.extract_into(&*graph.directed, sel, &mut edges);
    }
    t.row(vec![
        "generation-stamped scratch (bulk)".into(),
        format!("{:.2}", t0.elapsed().as_secs_f64() * 1e3),
    ]);

    let t0 = Instant::now();
    for sel in selections.iter().take(64) {
        let _ = extract_induced_spgemm(&a_f, sel);
    }
    t.row(vec![
        "selection SpGEMM (64 subgraphs, x8)".into(),
        format!("{:.2}", t0.elapsed().as_secs_f64() * 1e3 * 8.0),
    ]);
    t.print();
}

fn sampler_family_ablation() {
    println!("## 4. Sampler families (one 256-vertex batch)\n");
    let g = &DatasetConfig::ex3_like(0.1).generate(1, 8)[0];
    let graph = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
    let mut rng = StdRng::seed_from_u64(4);
    let batch: Vec<u32> = vertex_batches(g.num_nodes, 256, &mut rng).remove(0);
    let mut t = Table::new(&["sampler", "nodes", "edges", "components", "time (ms)"]);
    let time = |f: &mut dyn FnMut() -> (usize, usize, usize)| -> (usize, usize, usize, f64) {
        let t0 = Instant::now();
        let (n, e, c) = f();
        (n, e, c, t0.elapsed().as_secs_f64() * 1e3)
    };
    {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, e, c, ms) = time(&mut || {
            let s = ShadowSampler::new(ShadowConfig {
                depth: 3,
                fanout: 6,
            })
            .sample_batch(&graph, &batch, &mut rng);
            (s.num_nodes(), s.num_edges(), s.num_components())
        });
        t.row(vec![
            "ShaDow d=3 s=6".into(),
            n.to_string(),
            e.to_string(),
            c.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    {
        let (n, e, c, ms) = time(&mut || {
            let s = BulkShadowSampler::new(ShadowConfig {
                depth: 3,
                fanout: 6,
            })
            .sample_batches(&graph, std::slice::from_ref(&batch), 5)
            .remove(0);
            (s.num_nodes(), s.num_edges(), s.num_components())
        });
        t.row(vec![
            "ShaDow bulk d=3 s=6".into(),
            n.to_string(),
            e.to_string(),
            c.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    {
        let mut rng = StdRng::seed_from_u64(6);
        let (n, e, c, ms) = time(&mut || {
            let s = NodeWiseSampler::new(NodeWiseConfig {
                fanouts: vec![6, 6, 6],
            })
            .sample_batch(&graph, &batch, &mut rng);
            (s.num_nodes(), s.num_edges(), s.num_components())
        });
        t.row(vec![
            "node-wise [6,6,6]".into(),
            n.to_string(),
            e.to_string(),
            c.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    {
        let mut rng = StdRng::seed_from_u64(7);
        let (n, e, c, ms) = time(&mut || {
            let s = LayerWiseSampler::new(LayerWiseConfig {
                layer_sizes: vec![512, 512, 512],
            })
            .sample_batch(&graph, &batch, &mut rng);
            (s.num_nodes(), s.num_edges(), s.num_components())
        });
        t.row(vec![
            "layer-wise [512x3]".into(),
            n.to_string(),
            e.to_string(),
            c.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    t.print();
}

fn main() {
    println!("# Ablations\n");
    allreduce_ablation();
    bucket_size_ablation();
    bulk_k_ablation();
    extraction_ablation();
    sampler_family_ablation();
}
