//! Train-step microbenchmark with allocation accounting.
//!
//! Runs repeated IGNN train steps on a deterministic synthetic graph,
//! measuring steady-state wall-clock per step and heap allocations per
//! step (via a counting global allocator), and writes the results to
//! `BENCH_trainstep.json`.
//!
//! Usage: `trainstep [--nodes N] [--edges M] [--steps S] [--out PATH]
//! [--max-allocs A]`
//!
//! With `--max-allocs`, exits non-zero when steady-state allocations per
//! step exceed the bound — CI uses this to gate hot-path regressions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use trkx_bench::arg_value;
use trkx_bench::trainstep::{run_step, StepScratch, SyntheticGraph};
use trkx_ignn::{IgnnConfig, InteractionGnn};

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static TRACE_LEFT: AtomicU64 = AtomicU64::new(0);
std::thread_local! {
    static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        if TRACE.load(Ordering::Relaxed)
            && !IN_TRACE.with(|c| c.get())
            && TRACE_LEFT
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        {
            IN_TRACE.with(|c| c.set(true));
            eprintln!(
                "--- alloc {} bytes ---\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            IN_TRACE.with(|c| c.set(false));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = arg_value(&args, "--nodes", 1024);
    let edges: usize = arg_value(&args, "--edges", 4096);
    let steps: usize = arg_value(&args, "--steps", 20);
    let out: String = arg_value(&args, "--out", "BENCH_trainstep.json".to_string());
    let max_allocs: f64 = arg_value(&args, "--max-allocs", f64::INFINITY);

    let g = SyntheticGraph::generate(nodes, edges, 7);
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = IgnnConfig::new(g.x.cols(), g.y.cols())
        .with_hidden(32)
        .with_gnn_layers(4)
        .with_mlp_depth(2);
    let mut model = InteractionGnn::new(cfg, &mut rng);
    let mut scratch = StepScratch::new(1e-3);

    // Warmup: populate pools, fault in pages, settle the thread pool.
    for _ in 0..3 {
        run_step(&mut model, &g, &mut scratch);
    }

    if std::env::var("TRKX_TRACE_ALLOCS").is_ok() {
        TRACE_LEFT.store(600, Ordering::Relaxed);
        TRACE.store(true, Ordering::Relaxed);
    }
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let mut loss = 0.0;
    for _ in 0..steps {
        loss = run_step(&mut model, &g, &mut scratch);
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;

    let ns_per_step = elapsed.as_nanos() as f64 / steps as f64;
    let allocs_per_step = allocs as f64 / steps as f64;
    let report = serde_json::json!({
        "bench": "trainstep",
        "nodes": nodes,
        "edges": edges,
        "steps": steps,
        "ns_per_step": ns_per_step,
        "ms_per_step": ns_per_step / 1e6,
        "allocations_per_step": allocs_per_step,
        "alloc_bytes_per_step": bytes as f64 / steps as f64,
        "final_loss": loss,
        "threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    });
    std::fs::write(&out, format!("{report}\n")).expect("write bench report");
    println!(
        "trainstep {nodes}n/{edges}e: {:.3} ms/step, {:.0} allocs/step -> {out}",
        ns_per_step / 1e6,
        allocs_per_step
    );
    if allocs_per_step > max_allocs {
        eprintln!("FAIL: {allocs_per_step:.0} allocs/step exceeds --max-allocs {max_allocs:.0}");
        std::process::exit(1);
    }
}
