//! Message-passing kernel microbenchmark with allocation accounting.
//!
//! Times the kernels the fused message-passing path replaced against
//! their references — serial vs plan-driven scatter, unfused vs fused
//! edge-input assembly, and the whole IGNN forward+backward both ways —
//! and counts steady-state heap allocations and tape activation floats
//! per step for each path. Results go to `BENCH_mp.json`.
//!
//! The shim thread pool is sized once per process (`RAYON_NUM_THREADS`),
//! so thread scaling is measured by re-executing this binary as a child
//! per requested thread count and collecting one record per pool size.
//!
//! Usage: `mp [--nodes N] [--edges M] [--hidden H] [--layers L]
//! [--reps R] [--threads 1,4] [--out PATH]`
//!
//! Exits non-zero if the fused path does not strictly reduce tape
//! activation floats — a deterministic structural gate CI relies on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};
use trkx_bench::{arg_flag, arg_value};
use trkx_ignn::{IgnnConfig, InteractionGnn};
use trkx_nn::{bce_with_logits, Bindings};
use trkx_tensor::{EdgePlans, Matrix, Tape};

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Best-of-`reps` wall time in milliseconds, after one warmup call.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Sizes {
    nodes: usize,
    edges: usize,
    hidden: usize,
    layers: usize,
    reps: usize,
}

/// One measurement pass at the current process's pool size.
fn measure(s: &Sizes) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(7);
    let src: Arc<Vec<u32>> = Arc::new(
        (0..s.edges)
            .map(|_| rng.gen_range(0..s.nodes as u32))
            .collect(),
    );
    let dst: Arc<Vec<u32>> = Arc::new(
        (0..s.edges)
            .map(|_| rng.gen_range(0..s.nodes as u32))
            .collect(),
    );
    let labels: Vec<f32> = (0..s.edges).map(|_| f32::from(rng.gen_bool(0.3))).collect();
    let x = Matrix::randn(s.nodes, 3, 1.0, &mut rng);
    let y = Matrix::randn(s.edges, 2, 1.0, &mut rng);
    let plans = Arc::new(EdgePlans::new(src.clone(), dst.clone(), s.nodes));

    // Per-kernel timings at the hidden width the MP layers run at.
    let h = s.hidden;
    let edge_feat = Matrix::randn(s.edges, h, 1.0, &mut rng);
    let node_feat = Matrix::randn(s.nodes, 2 * h, 1.0, &mut rng);
    let edge_state = Matrix::randn(s.edges, 2 * h, 1.0, &mut rng);

    let plan_build_ms = time_ms(s.reps, || {
        std::hint::black_box(EdgePlans::new(src.clone(), dst.clone(), s.nodes));
    });
    let scatter_serial_ms = time_ms(s.reps, || {
        std::hint::black_box(edge_feat.scatter_add_rows(&src, s.nodes));
    });
    let scatter_planned_ms = time_ms(s.reps, || {
        let mut out = Matrix::zeros(s.nodes, h);
        edge_feat.scatter_rows_planned_acc(&plans.src_plan, &mut out);
        std::hint::black_box(out);
    });
    let msg_assembly_unfused_ms = time_ms(s.reps, || {
        let mut t = Tape::new();
        let xv = t.constant_copied(&node_feat);
        let yv = t.constant_copied(&edge_state);
        let xs = t.gather(xv, src.clone());
        let xd = t.gather(xv, dst.clone());
        std::hint::black_box(t.concat_cols(&[yv, xs, xd]));
    });
    let msg_assembly_fused_ms = time_ms(s.reps, || {
        let mut t = Tape::new();
        let xv = t.constant_copied(&node_feat);
        let yv = t.constant_copied(&edge_state);
        std::hint::black_box(t.gather_concat(yv, xv, plans.clone()));
    });

    // Whole-model forward+backward, reusing one tape so the buffer pool
    // reaches steady state and the alloc counter measures the hot path.
    let cfg = IgnnConfig::new(x.cols(), y.cols())
        .with_hidden(s.hidden)
        .with_gnn_layers(s.layers)
        .with_mlp_depth(2);
    let model = InteractionGnn::new(cfg, &mut rng);
    let mut tape = Tape::new();
    let run_fb = |fused: bool, tape: &mut Tape| -> usize {
        tape.reset();
        let mut bind = Bindings::new();
        let logits = if fused {
            model.forward_planned(tape, &mut bind, &x, &y, &plans)
        } else {
            model.forward_unfused(tape, &mut bind, &x, &y, src.clone(), dst.clone())
        };
        let loss = bce_with_logits(tape, logits, &labels, 1.0);
        let floats = tape.activation_floats();
        tape.backward(loss);
        floats
    };

    let mut activation_floats_fused = 0;
    let model_fb_fused_ms = time_ms(s.reps, || {
        activation_floats_fused = run_fb(true, &mut tape);
    });
    let a0 = ALLOCS.load(Ordering::Relaxed);
    run_fb(true, &mut tape);
    let allocs_fused = ALLOCS.load(Ordering::Relaxed) - a0;

    let mut activation_floats_unfused = 0;
    let model_fb_unfused_ms = time_ms(s.reps, || {
        activation_floats_unfused = run_fb(false, &mut tape);
    });
    let a0 = ALLOCS.load(Ordering::Relaxed);
    run_fb(false, &mut tape);
    let allocs_unfused = ALLOCS.load(Ordering::Relaxed) - a0;

    serde_json::json!({
        "threads": rayon::current_num_threads(),
        "plan_build_ms": plan_build_ms,
        "scatter_serial_ms": scatter_serial_ms,
        "scatter_planned_ms": scatter_planned_ms,
        "msg_assembly_unfused_ms": msg_assembly_unfused_ms,
        "msg_assembly_fused_ms": msg_assembly_fused_ms,
        "model_fb_unfused_ms": model_fb_unfused_ms,
        "model_fb_fused_ms": model_fb_fused_ms,
        "allocs_unfused_per_step": allocs_unfused,
        "allocs_fused_per_step": allocs_fused,
        "activation_floats_unfused": activation_floats_unfused,
        "activation_floats_fused": activation_floats_fused,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes = Sizes {
        nodes: arg_value(&args, "--nodes", 1024),
        edges: arg_value(&args, "--edges", 4096),
        hidden: arg_value(&args, "--hidden", 64),
        layers: arg_value(&args, "--layers", 8),
        reps: arg_value(&args, "--reps", 5),
    };

    if arg_flag(&args, "--child") {
        let record = measure(&sizes);
        println!("{record}");
        return;
    }

    let out: String = arg_value(&args, "--out", "BENCH_mp.json".to_string());
    // Children pin their pool size via RAYON_NUM_THREADS, so the sweep
    // covers oversubscribed pools too — scaling numbers on a smaller
    // machine then mostly measure scheduling overhead, but the record
    // keeps the same shape everywhere.
    let threads_arg: String = arg_value(&args, "--threads", "1,2,4,8".to_string());
    let max_alloc_spread: f64 = arg_value(&args, "--max-alloc-spread", f64::INFINITY);
    let thread_counts: Vec<usize> = threads_arg
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    assert!(
        !thread_counts.is_empty(),
        "--threads parsed to an empty list"
    );

    // One child process per pool size: the shim pool is sized once per
    // process, so in-process sweeps are impossible by design.
    let exe = std::env::current_exe().expect("current_exe");
    let mut runs = Vec::new();
    for &n in &thread_counts {
        let output = std::process::Command::new(&exe)
            .args([
                "--child",
                "--nodes",
                &sizes.nodes.to_string(),
                "--edges",
                &sizes.edges.to_string(),
                "--hidden",
                &sizes.hidden.to_string(),
                "--layers",
                &sizes.layers.to_string(),
                "--reps",
                &sizes.reps.to_string(),
            ])
            .env("RAYON_NUM_THREADS", n.to_string())
            .output()
            .expect("spawn child bench");
        assert!(
            output.status.success(),
            "child bench (threads={n}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let record = serde_json::parse_value(stdout.trim()).expect("parse child record");
        runs.push(record);
    }

    // Thread-scaling factor relative to the single-thread fused run,
    // computed here in the parent (children only know their own pool
    // size). >1 means the pool is helping at that size.
    let fused_ms = |run: &serde_json::Value| run.get("model_fb_fused_ms").and_then(|v| v.as_f64());
    let t1_fused = runs
        .iter()
        .find(|r| r.get("threads").and_then(|v| v.as_u64()) == Some(1))
        .and_then(&fused_ms);
    for run in &mut runs {
        let scaling = match (t1_fused, fused_ms(run)) {
            (Some(t1), Some(tn)) if tn > 0.0 => t1 / tn,
            _ => 0.0,
        };
        if let serde_json::Value::Map(fields) = run {
            fields.push((
                "model_fb_scaling_x".to_string(),
                serde_json::Value::F64(scaling),
            ));
        }
        let ms = |key: &str| run.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let n = run.get("threads").and_then(|v| v.as_u64()).unwrap_or(0);
        println!(
            "mp threads={n}: scatter {:.3}→{:.3} ms, assembly {:.3}→{:.3} ms, \
             model f+b {:.1}→{:.1} ms ({scaling:.2}x vs 1 thread)",
            ms("scatter_serial_ms"),
            ms("scatter_planned_ms"),
            ms("msg_assembly_unfused_ms"),
            ms("msg_assembly_fused_ms"),
            ms("model_fb_unfused_ms"),
            ms("model_fb_fused_ms"),
        );
    }

    // Physical core count caps the scaling any pool size can show; record
    // it so readings from core-starved hosts aren't mistaken for kernel
    // regressions.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = serde_json::json!({
        "bench": "message_passing",
        "nodes": sizes.nodes,
        "edges": sizes.edges,
        "hidden": sizes.hidden,
        "layers": sizes.layers,
        "reps": sizes.reps,
        "host_cores": host_cores,
        "runs": runs,
    });
    std::fs::write(&out, format!("{report}\n")).expect("write bench report");
    println!("wrote {out}");

    // Structural gate: fusion must strictly shrink the live tape.
    for run in report.get("runs").and_then(|r| r.as_seq()).unwrap_or(&[]) {
        let floats = |key: &str| run.get(key).and_then(|v| v.as_u64());
        let fused = floats("activation_floats_fused").unwrap_or(u64::MAX);
        let unfused = floats("activation_floats_unfused").unwrap_or(0);
        if fused >= unfused {
            eprintln!("FAIL: fused tape holds {fused} activation floats, unfused {unfused}");
            std::process::exit(1);
        }
    }

    // Alloc-flatness gate: per-thread pooled scratch means the fused
    // step's allocation count must not grow with the pool size.
    let fused_allocs: Vec<u64> = report
        .get("runs")
        .and_then(|r| r.as_seq())
        .unwrap_or(&[])
        .iter()
        .filter_map(|run| run.get("allocs_fused_per_step").and_then(|v| v.as_u64()))
        .collect();
    if let (Some(&lo), Some(&hi)) = (fused_allocs.iter().min(), fused_allocs.iter().max()) {
        let spread = hi - lo;
        if spread as f64 > max_alloc_spread {
            eprintln!(
                "FAIL: fused allocs/step spread {spread} across pool sizes \
                 ({fused_allocs:?}) exceeds --max-alloc-spread {max_alloc_spread}"
            );
            std::process::exit(1);
        }
    }
}
