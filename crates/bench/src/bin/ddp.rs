//! DDP communication benchmark: bucket-size sweep × backward-overlap
//! on/off, plus a Hogwild-vs-synchronous convergence/throughput study.
//! Results go to `BENCH_ddp.json`.
//!
//! ```text
//! cargo run -p trkx-bench --bin ddp --release [-- --tiny --out BENCH_ddp.json]
//! ```
//!
//! The sweep runs the single-thread DDP simulator (exact per-rank
//! timings regardless of host core count) over the bucket ladder
//! per-tensor → 256 KB → 1 MB → coalesced, with the bucket all-reduces
//! either fired post-backward (serial) or during backward as each
//! bucket's last gradient finalizes (overlapped). Every arm must land
//! on the same final loss bits — bucketing and overlap change only the
//! comm schedule, never the math — and the record carries the serial
//! comm account, the exposed remainder, and the hidden difference.
//!
//! The Hogwild study trains the same model with the lock-free
//! asynchronous trainer (racy shared-parameter SGD, zero comm, no
//! barriers) against the synchronous coalesced baseline, recording both
//! loss curves and the comm seconds the sync run pays.

use trkx_bench::{arg_flag, arg_value, Table};
use trkx_core::{
    prepare_graphs, train_minibatch_hogwild, train_minibatch_simulated_opts, GnnTrainConfig,
    SamplerKind,
};
use trkx_ddp::{AllReduceStrategy, DdpConfig};
use trkx_sampling::ShadowConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = arg_flag(&args, "--tiny");
    let out = arg_value(&args, "--out", "BENCH_ddp.json".to_string());
    let scale = arg_value(&args, "--scale", if tiny { 0.01f64 } else { 0.03 });
    let n_graphs = arg_value(&args, "--graphs", if tiny { 2usize } else { 3 });
    let epochs = arg_value(&args, "--epochs", if tiny { 2usize } else { 3 });
    let workers = arg_value(&args, "--workers", if tiny { 2usize } else { 4 });
    let hidden = arg_value(&args, "--hidden", if tiny { 8usize } else { 16 });
    let layers = arg_value(&args, "--layers", if tiny { 2usize } else { 3 });

    let dataset = trkx_detector::DatasetConfig::ex3_like(scale);
    let graphs = dataset.generate(n_graphs, 99);
    let prepared = prepare_graphs(&graphs);
    let n_train = (graphs.len() * 4 / 5).max(1);
    let (train, val) = prepared.split_at(n_train);

    let cfg = GnnTrainConfig {
        hidden,
        gnn_layers: layers,
        epochs,
        batch_size: 256,
        learning_rate: 2e-3,
        shadow: ShadowConfig {
            depth: 3,
            fanout: 6,
        },
        seed: 5,
        ..Default::default()
    };

    println!("# DDP comm bench: bucket sweep x overlap, P={workers}");
    let ladder: [(&str, AllReduceStrategy); 4] = [
        ("per-tensor", AllReduceStrategy::PerTensor),
        (
            "bucketed-256KB",
            AllReduceStrategy::Bucketed {
                bucket_bytes: 256 * 1024,
            },
        ),
        (
            "bucketed-1MB",
            AllReduceStrategy::Bucketed {
                bucket_bytes: 1024 * 1024,
            },
        ),
        ("coalesced", AllReduceStrategy::Coalesced),
    ];

    let mut table = Table::new(&[
        "strategy",
        "overlap",
        "comm(s)",
        "exposed(s)",
        "hidden(s)",
        "train(s)",
        "loss",
    ]);
    let mut sweep = Vec::new();
    let mut loss_bits = Vec::new();
    for (name, strategy) in ladder {
        for overlap in [false, true] {
            let r = train_minibatch_simulated_opts(
                &cfg,
                SamplerKind::Bulk { k: 2 * workers },
                false,
                DdpConfig::new(workers, strategy).with_overlap(overlap),
                train,
                val,
                Vec::new(),
            );
            let comm_s: f64 = r.epochs.iter().map(|e| e.timing.comm_virtual_s).sum();
            let exposed_s: f64 = r.epochs.iter().map(|e| e.timing.comm_exposed_s).sum();
            let train_s: f64 = r.epochs.iter().map(|e| e.timing.train_s).sum();
            let final_loss = r.epochs.last().map_or(f32::NAN, |e| e.train_loss);
            loss_bits.push(final_loss.to_bits());
            table.row(vec![
                name.into(),
                if overlap { "on" } else { "off" }.into(),
                format!("{comm_s:.4}"),
                if overlap {
                    format!("{exposed_s:.4}")
                } else {
                    "-".into()
                },
                if overlap {
                    format!("{:.4}", comm_s - exposed_s)
                } else {
                    "-".into()
                },
                format!("{train_s:.3}"),
                format!("{final_loss:.6}"),
            ]);
            sweep.push(serde_json::json!({
                "strategy": name,
                "comm_overlap": overlap,
                "comm_virtual_s": comm_s,
                "comm_exposed_s": exposed_s,
                "comm_hidden_s": if overlap { comm_s - exposed_s } else { 0.0 },
                "train_s": train_s,
                "final_loss": f64::from(final_loss),
                "loss_bits": final_loss.to_bits(),
            }));
        }
    }
    table.print();
    let parity = loss_bits.windows(2).all(|w| w[0] == w[1]);
    println!(
        "final-loss bit parity across {} arms: {}",
        loss_bits.len(),
        if parity { "IDENTICAL" } else { "DIVERGED" }
    );

    println!("\n# Hogwild vs synchronous DDP, P={workers}");
    let sync = train_minibatch_simulated_opts(
        &cfg,
        SamplerKind::Bulk { k: 2 * workers },
        false,
        DdpConfig::new(workers, AllReduceStrategy::Coalesced),
        train,
        val,
        Vec::new(),
    );
    let hog = train_minibatch_hogwild(
        &cfg,
        SamplerKind::Bulk { k: 2 * workers },
        workers,
        train,
        val,
    );
    let mut curve = Table::new(&["epoch", "sync loss", "hogwild loss", "sync comm(s)"]);
    for (s, h) in sync.epochs.iter().zip(&hog.epochs) {
        curve.row(vec![
            s.epoch.to_string(),
            format!("{:.6}", s.train_loss),
            format!("{:.6}", h.train_loss),
            format!("{:.4}", s.timing.comm_virtual_s),
        ]);
    }
    curve.print();
    let sync_comm: f64 = sync.epochs.iter().map(|e| e.timing.comm_virtual_s).sum();
    let hog_comm: f64 = hog.epochs.iter().map(|e| e.timing.comm_virtual_s).sum();
    println!("sync pays {sync_comm:.4}s modeled comm; hogwild pays {hog_comm:.4}s (lock-free, no barriers)");

    let record = serde_json::json!({
        "bench": "ddp",
        "workers": workers,
        "epochs": epochs,
        "graphs": n_graphs,
        "hidden": hidden,
        "layers": layers,
        "host_cores": std::thread::available_parallelism().map_or(1, usize::from),
        "loss_bit_parity": parity,
        "sweep": serde_json::Value::Seq(sweep),
        "hogwild": {
            "sync_losses": sync.epochs.iter().map(|e| f64::from(e.train_loss)).collect::<Vec<_>>(),
            "hogwild_losses": hog.epochs.iter().map(|e| f64::from(e.train_loss)).collect::<Vec<_>>(),
            "sync_comm_s": sync_comm,
            "hogwild_comm_s": hog_comm,
        },
    });
    std::fs::write(&out, format!("{record}")).expect("write bench record");
    println!("wrote {out}");
}
