//! Regenerates **Table I** — dataset statistics — for the synthetic
//! CTD-like and Ex3-like families, side by side with the paper's values.
//!
//! ```text
//! cargo run -p trkx-bench --bin table1 --release [-- --ctd-scale 0.004 --ex3-scale 0.05 --graphs 8]
//! ```
//!
//! The paper's absolute sizes correspond to scale 1.0; the default scales
//! keep laptop runtimes small while preserving the CTD/Ex3 contrast
//! (vertex counts, edge/vertex density ratio, feature dimensionalities).

use trkx_bench::{append_jsonl, arg_value, Table};
use trkx_detector::{dataset_stats, DatasetConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ctd_scale = arg_value(&args, "--ctd-scale", 0.004f64);
    let ex3_scale = arg_value(&args, "--ex3-scale", 0.05f64);
    let n_graphs = arg_value(&args, "--graphs", 8usize);

    println!("# Table I: datasets (paper values at scale 1.0; measured at the configured scale)\n");
    let mut table = Table::new(&[
        "Name",
        "Graphs",
        "Avg Vertices",
        "Avg Edges",
        "Edge/Vtx",
        "MLP Layers",
        "Vtx Feat",
        "Edge Feat",
    ]);

    // Paper reference rows.
    table.row(vec![
        "CTD (paper)".into(),
        "80".into(),
        "330.7K".into(),
        "6.9M".into(),
        format!("{:.1}", 6_900_000.0 / 330_700.0),
        "3".into(),
        "14".into(),
        "8".into(),
    ]);
    table.row(vec![
        "Ex3 (paper)".into(),
        "80".into(),
        "13.0K".into(),
        "47.8K".into(),
        format!("{:.1}", 47_800.0 / 13_000.0),
        "2".into(),
        "6".into(),
        "2".into(),
    ]);

    for cfg in [
        DatasetConfig::ctd_like(ctd_scale),
        DatasetConfig::ex3_like(ex3_scale),
    ] {
        let graphs = cfg.generate(n_graphs, 2024);
        let stats = dataset_stats(&graphs);
        table.row(vec![
            cfg.name.clone(),
            stats.graphs.to_string(),
            format!("{:.1}K", stats.avg_vertices / 1e3),
            format!("{:.1}K", stats.avg_edges / 1e3),
            format!("{:.1}", stats.avg_edges / stats.avg_vertices),
            cfg.mlp_layers.to_string(),
            cfg.num_vertex_features.to_string(),
            cfg.num_edge_features.to_string(),
        ]);
        append_jsonl(
            "table1",
            &serde_json::json!({
                "dataset": cfg.name,
                "graphs": stats.graphs,
                "avg_vertices": stats.avg_vertices,
                "avg_edges": stats.avg_edges,
                "edge_ratio": stats.avg_edges / stats.avg_vertices,
                "positive_fraction": stats.avg_positive_fraction,
                "target_vertices": cfg.target_vertices,
                "target_edges": cfg.target_edges,
            }),
        );
    }
    table.print();
    println!(
        "Scales: CTD x{ctd_scale}, Ex3 x{ex3_scale}. The edge/vertex density ratio and the\n\
         CTD:Ex3 contrast are scale-invariant targets; absolute rows shrink with scale."
    );
}
