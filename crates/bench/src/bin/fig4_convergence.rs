//! Regenerates **Figure 4** — precision/recall convergence on Ex3 for
//! (a) full-graph training (original Exa.TrkX, with its OOM skip),
//! (b) ShaDow minibatch training with the PyG-style baseline sampler,
//! (c) ShaDow minibatch training with our bulk implementation.
//!
//! ```text
//! cargo run -p trkx-bench --bin fig4_convergence --release \
//!   [-- --scale 0.05 --graphs 20 --epochs 15 --batch 256]
//! ```
//!
//! Paper shapes to reproduce: minibatch converges to higher precision
//! and recall than full-graph; (b) and (c) track each other (no
//! degradation from the bulk implementation).

use trkx_bench::{append_jsonl, arg_value, Table};
use trkx_core::{
    prepare_graphs, train_full_graph, train_minibatch, GnnTrainConfig, SamplerKind, TrainResult,
};
use trkx_ddp::DdpConfig;
use trkx_detector::{split_80_10_10, DatasetConfig};
use trkx_sampling::ShadowConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 0.05f64);
    let n_graphs = arg_value(&args, "--graphs", 12usize);
    let epochs = arg_value(&args, "--epochs", 10usize);
    let batch = arg_value(&args, "--batch", 256usize);
    let hidden = arg_value(&args, "--hidden", 24usize);
    let layers = arg_value(&args, "--layers", 3usize);

    let dataset = DatasetConfig::ex3_like(scale);
    let graphs = dataset.generate(n_graphs, 404);
    let (tr, va, _te) = split_80_10_10(graphs.len());
    let prepared = prepare_graphs(&graphs);
    let train = &prepared[tr];
    let val = &prepared[va];
    println!(
        "# Figure 4: convergence on {} ({} train / {} val graphs, {} epochs)\n",
        dataset.name,
        train.len(),
        val.len(),
        epochs
    );

    let cfg = GnnTrainConfig {
        hidden,
        gnn_layers: layers,
        mlp_depth: dataset.mlp_layers,
        epochs,
        batch_size: batch,
        learning_rate: 2e-3,
        shadow: ShadowConfig {
            depth: 3,
            fanout: 6,
        },
        seed: 17,
        ..Default::default()
    };

    // Full-graph arm: activation budget set to the median graph footprint
    // so that (as on a memory-limited GPU) the largest events are skipped.
    let icfg = cfg.ignn_config(dataset.num_vertex_features, dataset.num_edge_features);
    let mut footprints: Vec<usize> = train
        .iter()
        .map(|g| icfg.estimate_activation_floats(g.num_nodes, g.num_edges()))
        .collect();
    footprints.sort_unstable();
    let budget = footprints[footprints.len() / 2];

    println!("training full-graph arm (budget {budget} activation floats)...");
    let full = train_full_graph(&cfg, train, val, Some(budget));
    println!(
        "  skipped {} / {} graphs\n",
        full.skipped_graphs,
        train.len()
    );
    println!("training ShaDow PyG-style baseline arm...");
    let pyg = train_minibatch(&cfg, SamplerKind::Baseline, DdpConfig::single(), train, val);
    println!("training ShaDow bulk (ours) arm...\n");
    let ours = train_minibatch(
        &cfg,
        SamplerKind::Bulk { k: 4 },
        DdpConfig::single(),
        train,
        val,
    );

    let mut table = Table::new(&[
        "epoch", "full P", "full R", "PyG P", "PyG R", "ours P", "ours R",
    ]);
    for e in 0..epochs {
        table.row(vec![
            e.to_string(),
            format!("{:.3}", full.epochs[e].val_precision),
            format!("{:.3}", full.epochs[e].val_recall),
            format!("{:.3}", pyg.epochs[e].val_precision),
            format!("{:.3}", pyg.epochs[e].val_recall),
            format!("{:.3}", ours.epochs[e].val_precision),
            format!("{:.3}", ours.epochs[e].val_recall),
        ]);
        append_jsonl(
            "fig4",
            &serde_json::json!({
                "epoch": e,
                "full": {"p": full.epochs[e].val_precision, "r": full.epochs[e].val_recall},
                "pyg": {"p": pyg.epochs[e].val_precision, "r": pyg.epochs[e].val_recall},
                "ours": {"p": ours.epochs[e].val_precision, "r": ours.epochs[e].val_recall},
            }),
        );
    }
    table.print();

    let last = |r: &TrainResult| {
        let e = r.epochs.last().unwrap();
        (e.val_precision, e.val_recall)
    };
    let (fp, fr) = last(&full);
    let (pp, pr) = last(&pyg);
    let (op, or) = last(&ours);
    println!("## Paper-shape checks");
    println!(
        "- minibatch (ours) vs full-graph: P {:.3} vs {:.3} ({}), R {:.3} vs {:.3} ({})",
        op,
        fp,
        if op > fp {
            "minibatch higher, as in paper"
        } else {
            "UNEXPECTED"
        },
        or,
        fr,
        if or > fr {
            "minibatch higher, as in paper"
        } else {
            "UNEXPECTED"
        },
    );
    println!(
        "- ours vs PyG-style: |dP| {:.3}, |dR| {:.3} ({})",
        (op - pp).abs(),
        (or - pr).abs(),
        if (op - pp).abs() < 0.1 && (or - pr).abs() < 0.1 {
            "no degradation, as in paper"
        } else {
            "gap larger than expected"
        }
    );
}
