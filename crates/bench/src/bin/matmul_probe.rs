//! Quick GFLOP/s probe for the matmul kernels at the IGNN hot shapes.

use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use trkx_tensor::Matrix;

fn time_gflops(reps: usize, flops: f64, mut f: impl FnMut()) -> (f64, f64) {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best * 1e3, flops / best / 1e9)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    for (m, k, n) in [
        (4096usize, 192usize, 64usize),
        (4096, 64, 64),
        (4096, 66, 32),
        (1024, 160, 64),
        (4096, 64, 1),
    ] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let (ms, gf) = time_gflops(5, flops, || {
            std::hint::black_box(a.matmul(&b));
        });
        let (ms_tn, gf_tn) = time_gflops(5, flops, || {
            std::hint::black_box(at.matmul_tn(&b));
        });
        let (ms_nt, gf_nt) = time_gflops(5, flops, || {
            std::hint::black_box(a.matmul_nt(&bt));
        });
        println!(
            "{m}x{k}x{n}: nn {ms:.3} ms ({gf:.2} GF/s)  tn {ms_tn:.3} ms ({gf_tn:.2} GF/s)  nt {ms_nt:.3} ms ({gf_nt:.2} GF/s)"
        );
    }
    // Backward shapes: weight grad (TN, m = fan-in, k = edges) and input
    // grad (NT, k = fan-out).
    for (edges, fin, fout) in [
        (4096usize, 66usize, 32usize),
        (4096, 96, 32),
        (4096, 32, 32),
        (4096, 64, 1),
    ] {
        let av = Matrix::randn(edges, fin, 1.0, &mut rng);
        let g = Matrix::randn(edges, fout, 1.0, &mut rng);
        let w = Matrix::randn(fin, fout, 1.0, &mut rng);
        let flops = 2.0 * edges as f64 * fin as f64 * fout as f64;
        let (ms_tn, gf_tn) = time_gflops(5, flops, || {
            std::hint::black_box(av.matmul_tn(&g));
        });
        let (ms_nt, gf_nt) = time_gflops(5, flops, || {
            std::hint::black_box(g.matmul_nt(&w));
        });
        println!(
            "bwd e={edges} {fin}->{fout}: wgrad-tn {ms_tn:.3} ms ({gf_tn:.2} GF/s)  xgrad-nt {ms_nt:.3} ms ({gf_nt:.2} GF/s)"
        );
    }
}
