//! Serving benchmark: latency percentiles and throughput of `trkx
//! serve`'s micro-batching core across worker-pool and batch-budget
//! settings. Results go to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p trkx-bench --bin serve --release [-- --tiny --out BENCH_serve.json]
//! ```
//!
//! The harness trains one tiny pipeline in-process, registers it with a
//! [`ModelRegistry`], then for each `(workers, max_batch_events)` arm
//! starts a fresh [`ServerCore`] and replays the same burst of simulated
//! events through it, plus one deliberately oversized event that must be
//! shed. Per-arm records carry p50/p95/p99/max latency, events/sec, the
//! mean micro-batch size actually formed, and the shed counters — the
//! interesting shape is p50 falling as batching amortises the forward
//! pass, and tail latency falling further once a second worker drains
//! the queue concurrently.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;
use trkx_bench::{arg_flag, arg_value, Table};
use trkx_core::{train_pipeline, EmbeddingConfig, GnnTrainConfig, PipelineConfig, SamplerKind};
use trkx_detector::{simulate_event, DetectorGeometry, Event, GunConfig};
use trkx_sampling::ShadowConfig;
use trkx_serve::{ModelRegistry, ServeConfig, ServerCore};

use rand::{rngs::StdRng, SeedableRng};

fn train_tiny(train_events: usize, particles: usize, tiny: bool) -> trkx_core::TrainedPipeline {
    let geometry = DetectorGeometry::default();
    let gun = GunConfig::default();
    let mut rng = StdRng::seed_from_u64(1234);
    let events: Vec<_> = (0..train_events + 1)
        .map(|_| simulate_event(&geometry, &gun, particles, 0.1, &mut rng))
        .collect();
    let (train, val) = events.split_at(train_events);
    let config = PipelineConfig {
        embedding: EmbeddingConfig {
            epochs: if tiny { 6 } else { 12 },
            ..Default::default()
        },
        gnn: GnnTrainConfig {
            hidden: if tiny { 16 } else { 24 },
            gnn_layers: if tiny { 2 } else { 3 },
            epochs: if tiny { 2 } else { 6 },
            batch_size: 64,
            shadow: ShadowConfig {
                depth: 2,
                fanout: 4,
            },
            ..Default::default()
        },
        gnn_sampler: SamplerKind::Bulk { k: 4 },
        ..Default::default()
    };
    train_pipeline(config, train, val).0
}

struct Arm {
    workers: usize,
    max_batch_events: usize,
}

fn run_arm(
    arm: &Arm,
    registry: &Arc<ModelRegistry>,
    events: &[Event],
    oversized: &Event,
    max_event_hits: usize,
) -> serde_json::Value {
    let core = ServerCore::start(
        ServeConfig {
            workers: arm.workers,
            max_queue: events.len() + 8,
            max_event_hits,
            max_batch_events: arm.max_batch_events,
            max_batch_hits: usize::MAX / 2,
        },
        Arc::clone(registry),
    );
    let (tx, rx) = channel();
    let t0 = Instant::now();
    // One burst: every event is in the queue before the first batch is
    // formed, so batching has material to work with.
    for (i, e) in events.iter().enumerate() {
        core.submit_event(i as u64, e.clone(), tx.clone());
    }
    core.submit_event(events.len() as u64, oversized.clone(), tx.clone());
    let mut ok = 0usize;
    let mut shed = 0usize;
    for _ in 0..events.len() + 1 {
        let resp = rx.recv().expect("response for every request");
        match resp.status.as_str() {
            "ok" => ok += 1,
            "shed" => shed += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = core.stats.snapshot();
    core.shutdown();
    assert_eq!(ok, events.len(), "every sized event must complete");
    assert_eq!(shed, 1, "the oversized event must shed");
    serde_json::json!({
        "workers": arm.workers,
        "max_batch_events": arm.max_batch_events,
        "events": events.len(),
        "completed": snap.completed,
        "shed_too_large": snap.shed_too_large,
        "shed_overloaded": snap.shed_overloaded,
        "p50_us": snap.p50_us,
        "p95_us": snap.p95_us,
        "p99_us": snap.p99_us,
        "max_us": snap.max_us,
        "events_per_sec": events.len() as f64 / wall_s,
        "mean_batch_events": snap.mean_batch_events,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = arg_flag(&args, "--tiny");
    let out: String = arg_value(&args, "--out", "BENCH_serve.json".to_string());
    let train_events = arg_value(&args, "--train-events", if tiny { 4usize } else { 6 });
    let particles = arg_value(&args, "--particles", if tiny { 15usize } else { 25 });
    let burst = arg_value(&args, "--burst", if tiny { 12usize } else { 48 });

    println!("# serve: latency/throughput across worker pools and batch budgets");
    println!("training a tiny pipeline ({train_events} events x {particles} particles)...");
    let pipeline = train_tiny(train_events, particles, tiny);
    let registry = Arc::new(ModelRegistry::from_pipeline(pipeline));

    // Request stream: `burst` serveable events plus one oversized event
    // (twice the hit budget) that admission control must shed.
    let geometry = DetectorGeometry::default();
    let gun = GunConfig::default();
    let mut rng = StdRng::seed_from_u64(77);
    let events: Vec<Event> = (0..burst)
        .map(|_| simulate_event(&geometry, &gun, particles, 0.1, &mut rng))
        .collect();
    let max_event_hits = events.iter().map(Event::num_hits).max().unwrap_or(0) * 2;
    let oversized = loop {
        let e = simulate_event(&geometry, &gun, particles * 8, 0.1, &mut rng);
        if e.num_hits() > max_event_hits {
            break e;
        }
    };

    let arms = if tiny {
        vec![Arm {
            workers: 1,
            max_batch_events: 4,
        }]
    } else {
        vec![
            Arm {
                workers: 1,
                max_batch_events: 1,
            },
            Arm {
                workers: 1,
                max_batch_events: 8,
            },
            Arm {
                workers: 2,
                max_batch_events: 8,
            },
            Arm {
                workers: 4,
                max_batch_events: 8,
            },
        ]
    };

    let mut table = Table::new(&[
        "workers",
        "batch",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "events/s",
        "mean batch",
        "shed",
    ]);
    let mut runs = Vec::new();
    for arm in &arms {
        let record = run_arm(arm, &registry, &events, &oversized, max_event_hits);
        let ms = |key: &str| record.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) / 1e3;
        table.row(vec![
            arm.workers.to_string(),
            arm.max_batch_events.to_string(),
            format!("{:.2}", ms("p50_us")),
            format!("{:.2}", ms("p95_us")),
            format!("{:.2}", ms("p99_us")),
            format!(
                "{:.1}",
                record
                    .get("events_per_sec")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            ),
            format!(
                "{:.2}",
                record
                    .get("mean_batch_events")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            ),
            record
                .get("shed_too_large")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                .to_string(),
        ]);
        runs.push(record);
    }
    table.print();

    let record = serde_json::json!({
        "bench": "serve",
        "train_events": train_events,
        "particles": particles,
        "burst": burst,
        "max_event_hits": max_event_hits,
        "host_cores": std::thread::available_parallelism().map_or(1, usize::from),
        "runs": serde_json::Value::Seq(runs),
    });
    std::fs::write(&out, format!("{record}")).expect("write bench record");
    println!("wrote {out}");
}
