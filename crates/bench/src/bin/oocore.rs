//! Out-of-core sharded graph store benchmark: sampled-batch latency of
//! the in-core `SamplerGraph` vs the file-backed `ShardedCsr` store
//! across an LRU cache-capacity sweep, with the store's own hit / miss /
//! eviction counters, plus a short training run asserting the loss curve
//! is bit-identical to in-core. Writes `BENCH_oocore.json`.
//!
//! Usage: `oocore [--tiny] [--scale S] [--shard-nodes N] [--repeat R]
//! [--out PATH]`
//!
//! Gates (exit non-zero on failure; CI runs `--tiny`):
//! * every sharded configuration reproduces the in-core subgraphs
//!   bit-for-bit;
//! * the smallest cache evicts (nonzero evictions — the sweep actually
//!   exercised out-of-core behaviour);
//! * at the smallest cache the on-disk payload exceeds the cache budget
//!   (capacity x max shard bytes) by at least 10x;
//! * the 2-epoch sharded training run's loss bits equal in-core's.

use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use trkx_bench::{arg_flag, arg_value};
use trkx_core::{
    prepare_graphs, prepare_graphs_sharded, train_minibatch, GnnTrainConfig, SamplerKind,
};
use trkx_ddp::DdpConfig;
use trkx_detector::{spill_adjacency, DatasetConfig};
use trkx_sampling::{vertex_batches, BulkShadowSampler, SamplerGraph, ShadowConfig};
use trkx_sparse::ShardedCsr;

fn open_sharded(spec: &trkx_detector::SpilledAdjacency, cache: usize) -> SamplerGraph {
    let open = |p: &std::path::Path| {
        Arc::new(ShardedCsr::<u32>::open(p, cache).expect("open sharded store"))
    };
    SamplerGraph::from_stores(spec.num_nodes, open(&spec.directed), open(&spec.undirected))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = arg_flag(&args, "--tiny");
    let scale: f64 = arg_value(&args, "--scale", if tiny { 0.02 } else { 0.2 });
    let shard_nodes: usize = arg_value(&args, "--shard-nodes", if tiny { 8 } else { 128 });
    let repeat: usize = arg_value(&args, "--repeat", 3).max(1);
    let out: String = arg_value(&args, "--out", "BENCH_oocore.json".to_string());

    let dcfg = DatasetConfig::ex3_like(scale);
    let g = &dcfg.generate(1, 17)[0];
    let dir = std::env::temp_dir().join(format!("trkx-oocore-{}", std::process::id()));
    let spec = spill_adjacency(g.num_nodes, &g.src, &g.dst, &dir, "event", shard_nodes)
        .expect("spill sharded adjacency");
    let probe = ShardedCsr::<u32>::open(&spec.directed, 1).expect("open spilled store");
    let num_shards = probe.num_shards();
    let payload_bytes = probe.payload_bytes();
    let max_shard_bytes = probe.max_shard_bytes().max(1);
    drop(probe);

    let sampler = BulkShadowSampler::new(ShadowConfig {
        depth: 3,
        fanout: 6,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let batches = vertex_batches(g.num_nodes, 256, &mut rng);

    // In-core baseline: latency + reference subgraphs.
    let incore = SamplerGraph::new(g.num_nodes, &g.src, &g.dst);
    let mut best_incore = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..repeat {
        let t = Instant::now();
        reference = sampler.sample_batches(&incore, &batches, 9);
        best_incore = best_incore.min(t.elapsed().as_secs_f64());
    }

    // Cache sweep: smallest first so the eviction gate binds hardest.
    let caps: Vec<usize> = [1usize, 2, 4, 16, num_shards.max(1)]
        .into_iter()
        .filter(|&c| c <= num_shards.max(1))
        .collect();
    println!(
        "oocore: {} nodes, {} edges, {num_shards} shards of {shard_nodes} nodes \
         ({payload_bytes} payload bytes); in-core {:.2} ms/epoch",
        g.num_nodes,
        g.num_edges(),
        best_incore * 1e3
    );
    let mut sweep = Vec::new();
    let mut evictions_at_smallest = 0u64;
    let mut parity_failures = 0usize;
    for (ci, &cache) in caps.iter().enumerate() {
        let graph = open_sharded(&spec, cache);
        let mut best = f64::INFINITY;
        let mut subs = Vec::new();
        for _ in 0..repeat {
            let t = Instant::now();
            subs = sampler.sample_batches(&graph, &batches, 9);
            best = best.min(t.elapsed().as_secs_f64());
        }
        if subs != reference {
            eprintln!("FAIL: cache {cache} produced subgraphs differing from in-core");
            parity_failures += 1;
        }
        let c = graph.cache_counters().expect("sharded counters");
        if ci == 0 {
            evictions_at_smallest = c.evictions;
        }
        println!(
            "cache {cache:>5}: {:.2} ms/epoch ({:.2}x in-core), {} hits / {} misses / \
             {} evictions (hit rate {:.3})",
            best * 1e3,
            best / best_incore,
            c.hits,
            c.misses,
            c.evictions,
            c.hit_rate()
        );
        sweep.push(serde_json::json!({
            "cache_shards": cache,
            "best_s": best,
            "slowdown_vs_incore": best / best_incore,
            "hits": c.hits,
            "misses": c.misses,
            "evictions": c.evictions,
            "hit_rate": c.hit_rate(),
        }));
    }

    // Loss-parity gate: a short sharded training run must reproduce the
    // in-core loss curve bit for bit (3 tiny events, 2 epochs).
    let train_graphs = DatasetConfig::ex3_like((scale * 0.5).min(0.02)).generate(3, 21);
    let tcfg = GnnTrainConfig {
        hidden: 16,
        gnn_layers: 2,
        mlp_depth: 2,
        epochs: 2,
        batch_size: 32,
        shadow: ShadowConfig {
            depth: 2,
            fanout: 4,
        },
        seed: 3,
        ..Default::default()
    };
    let pin = prepare_graphs(&train_graphs);
    let psh = prepare_graphs_sharded(&train_graphs, &dir.join("train"), shard_nodes, 2)
        .expect("prepare sharded training graphs");
    let kind = SamplerKind::Bulk { k: 2 };
    let a = train_minibatch(&tcfg, kind, DdpConfig::single(), &pin[..2], &pin[2..]);
    let b = train_minibatch(&tcfg, kind, DdpConfig::single(), &psh[..2], &psh[2..]);
    let loss_bits_identical = a
        .epochs
        .iter()
        .zip(&b.epochs)
        .all(|(x, y)| x.train_loss.to_bits() == y.train_loss.to_bits());
    println!(
        "train parity: in-core losses {:?} vs sharded {:?} -> {}",
        a.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>(),
        b.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>(),
        if loss_bits_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let smallest_budget = caps[0] as u64 * max_shard_bytes;
    let disk_over_budget = payload_bytes as f64 / smallest_budget.max(1) as f64;
    let report = serde_json::json!({
        "bench": "oocore",
        "tiny": tiny,
        "scale": scale,
        "nodes": g.num_nodes,
        "edges": g.num_edges(),
        "shard_nodes": shard_nodes,
        "num_shards": num_shards,
        "payload_bytes": payload_bytes,
        "max_shard_bytes": max_shard_bytes,
        "incore_best_s": best_incore,
        "sweep": sweep,
        "disk_over_smallest_cache_budget": disk_over_budget,
        "train_loss_bits_identical": loss_bits_identical,
    });
    std::fs::write(&out, format!("{report}\n")).expect("write bench report");
    println!(
        "disk/budget ratio at cache {}: {disk_over_budget:.1}x -> {out}",
        caps[0]
    );
    std::fs::remove_dir_all(&dir).ok();

    let mut failed = false;
    if parity_failures > 0 {
        eprintln!("FAIL: {parity_failures} cache configurations broke subgraph parity");
        failed = true;
    }
    if evictions_at_smallest == 0 {
        eprintln!("FAIL: smallest cache (capacity {}) never evicted", caps[0]);
        failed = true;
    }
    if disk_over_budget < 10.0 {
        eprintln!(
            "FAIL: on-disk payload only {disk_over_budget:.1}x the smallest cache budget (< 10x)"
        );
        failed = true;
    }
    if !loss_bits_identical {
        eprintln!("FAIL: sharded training loss diverged from in-core");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
